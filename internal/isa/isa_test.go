package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderSimpleProgram(t *testing.T) {
	p, err := NewBuilder("vecadd").
		Mov(R(0), RegTid).
		ShlI(R(0), R(0), 2).
		Add(R(1), R(0), R(2)).
		LdGlobal(R(3), R(1), 0, 4).
		AddI(R(3), R(3), 1).
		StGlobal(R(1), 0, R(3), 4).
		Exit().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Errorf("len = %d, want 7", p.Len())
	}
	if p.NumReg != 4 {
		t.Errorf("NumReg = %d, want 4", p.NumReg)
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	p, err := NewBuilder("loop").
		MovI(R(0), 10).
		Label("top").
		SubI(R(0), R(0), 1).
		SetPI(CmpGT, P(0), R(0), 0).
		BraP(P(0), false, "top").
		Exit().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.At(3)
	if br.Op != OpBrab || br.Target != 1 {
		t.Errorf("branch = %v target %d, want brab -> 1", br.Op, br.Target)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	p, err := NewBuilder("fwd").
		SetPI(CmpEQ, P(0), R(0), 0).
		BraP(P(0), false, "done").
		AddI(R(0), R(0), 1).
		Label("done").
		Exit().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.At(1).Target != 3 {
		t.Errorf("forward target = %d, want 3", p.At(1).Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("bad").Bra("nowhere").Exit().Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewBuilder("dup").Label("x").Nop().Label("x").Exit().Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("err = %v, want duplicate label", err)
	}
}

func TestValidateBadWidth(t *testing.T) {
	p := &Program{Name: "w", NumReg: 2, Code: []Instr{
		{Op: OpLdGlobal, Dst: R(0), SrcA: R(1), Width: 3, Guard: PredNone},
	}}
	if err := p.Validate(); err == nil {
		t.Error("width 3 should fail validation")
	}
}

func TestValidateRegisterRange(t *testing.T) {
	p := &Program{Name: "r", NumReg: 2, Code: []Instr{
		{Op: OpMov, Dst: R(5), SrcA: R(0), SrcB: RegNone, SrcC: RegNone, Guard: PredNone},
	}}
	if err := p.Validate(); err == nil {
		t.Error("register beyond NumReg should fail validation")
	}
}

func TestValidateBranchTarget(t *testing.T) {
	p := &Program{Name: "b", NumReg: 1, Code: []Instr{
		{Op: OpBra, Target: 9, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, Guard: PredNone},
	}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target should fail validation")
	}
}

func TestEvalALUArithmetic(t *testing.T) {
	cases := []struct {
		in      Instr
		a, b, c uint64
		want    uint64
	}{
		{Instr{Op: OpMov}, 42, 0, 0, 42},
		{Instr{Op: OpMovI, Imm: -1}, 0, 0, 0, ^uint64(0)},
		{Instr{Op: OpAdd}, 3, 4, 0, 7},
		{Instr{Op: OpAddI, Imm: -2}, 3, 0, 0, 1},
		{Instr{Op: OpSub}, 3, 5, 0, ^uint64(1)},
		{Instr{Op: OpMul}, 7, 6, 0, 42},
		{Instr{Op: OpMulI, Imm: 128}, 2, 0, 0, 256},
		{Instr{Op: OpMad}, 3, 4, 5, 17},
		{Instr{Op: OpMin}, 9, 4, 0, 4},
		{Instr{Op: OpMax}, 9, 4, 0, 9},
		{Instr{Op: OpAnd}, 0b1100, 0b1010, 0, 0b1000},
		{Instr{Op: OpOr}, 0b1100, 0b1010, 0, 0b1110},
		{Instr{Op: OpXor}, 0b1100, 0b1010, 0, 0b0110},
		{Instr{Op: OpNot}, 0, 0, 0, ^uint64(0)},
		{Instr{Op: OpShl}, 1, 12, 0, 4096},
		{Instr{Op: OpShlI, Imm: 3}, 2, 0, 0, 16},
		{Instr{Op: OpShr}, 256, 4, 0, 16},
		{Instr{Op: OpShrI, Imm: 1}, 3, 0, 0, 1},
		{Instr{Op: OpSext, Width: 1}, 0x80, 0, 0, ^uint64(0x7F)},
		{Instr{Op: OpSext, Width: 2}, 0x7FFF, 0, 0, 0x7FFF},
	}
	for i, tc := range cases {
		got, err := EvalALU(&tc.in, tc.a, tc.b, tc.c)
		if err != nil {
			t.Fatalf("case %d (%v): %v", i, tc.in.Op, err)
		}
		if got != tc.want {
			t.Errorf("case %d (%v): got %#x, want %#x", i, tc.in.Op, got, tc.want)
		}
	}
}

func TestEvalALUShiftMasking(t *testing.T) {
	in := Instr{Op: OpShl}
	if got, _ := EvalALU(&in, 1, 64, 0); got != 1 {
		t.Errorf("shift by 64 should mask to 0: got %d", got)
	}
}

func TestEvalCmp(t *testing.T) {
	neg := ^uint64(0) // -1 signed
	cases := []struct {
		cmp  CmpOp
		a, b uint64
		want bool
	}{
		{CmpEQ, 5, 5, true},
		{CmpNE, 5, 5, false},
		{CmpLT, 3, 5, true},
		{CmpLE, 5, 5, true},
		{CmpGT, 6, 5, true},
		{CmpGE, 4, 5, false},
		{CmpLT, neg, 5, false},  // unsigned: huge
		{CmpLTS, neg, 5, true},  // signed: -1 < 5
		{CmpGTS, 5, neg, true},  // signed: 5 > -1
		{CmpGES, neg, 0, false}, // signed: -1 < 0
		{CmpLES, neg, neg, true},
	}
	for i, tc := range cases {
		if got := EvalCmp(tc.cmp, tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: %v(%d,%d) = %v, want %v", i, tc.cmp, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSignZeroExtendInverse(t *testing.T) {
	f := func(v uint64) bool {
		for _, w := range []uint8{1, 2, 4, 8} {
			z := ZeroExtend(v, w)
			s := SignExtend(v, w)
			if ZeroExtend(s, w) != z {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalSfuDeterministicAndMixing(t *testing.T) {
	in := Instr{Op: OpSfu}
	a, _ := EvalALU(&in, 12345, 0, 0)
	b, _ := EvalALU(&in, 12345, 0, 0)
	if a != b {
		t.Error("SFU must be deterministic")
	}
	if a == 12345 || a == 0 {
		t.Error("SFU should mix bits")
	}
	if c, _ := EvalALU(&in, 12346, 0, 0); c == a {
		t.Error("different inputs should produce different outputs")
	}
}

func TestEvalALUErrorsOnMemOp(t *testing.T) {
	in := Instr{Op: OpLdGlobal}
	_, err := EvalALU(&in, 0, 0, 0)
	var nae *NonALUOpError
	if !errors.As(err, &nae) {
		t.Fatalf("EvalALU on a memory op must return *NonALUOpError, got %v", err)
	}
	if nae.Op != OpLdGlobal {
		t.Errorf("error op = %v, want %v", nae.Op, OpLdGlobal)
	}
}

func TestOpClasses(t *testing.T) {
	if OpAdd.Class() != ClassALU {
		t.Error("add should be ALU class")
	}
	if OpSfu.Class() != ClassSFU {
		t.Error("sfu should be SFU class")
	}
	for _, op := range []Op{OpLdGlobal, OpStGlobal, OpLdShared, OpStShared, OpLdStage, OpStStage, OpAtomAdd} {
		if !op.IsMem() {
			t.Errorf("%v should be a memory op", op)
		}
	}
	for _, op := range []Op{OpBra, OpBrab, OpBar, OpExit} {
		if op.Class() != ClassCtrl {
			t.Errorf("%v should be control class", op)
		}
	}
	if !OpLdGlobal.IsGlobalMem() || OpLdShared.IsGlobalMem() || OpLdStage.IsGlobalMem() {
		t.Error("IsGlobalMem misclassifies")
	}
	if !OpAtomAdd.IsLoad() || !OpAtomAdd.IsStore() {
		t.Error("atomics are both load and store")
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
.name saxpyish
; scale-and-add over a strided array
  mov r0, %tid
  shl r0, r0, 2
  add r1, r0, %p0     ; base pointer parameter
loop:
  ld.global.u32 r2, [r1+0]
  mul r2, r2, 3
  add r2, r2, 7
  st.global.u32 [r1+0], r2
  add r1, r1, 128
  setp.lt p0, r1, %p1
  @p0 bra loop
  bar
  exit
`
	p, err := Assemble("x", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "saxpyish" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Len() != 12 {
		t.Fatalf("len = %d, want 12; disasm:\n%s", p.Len(), p.Disassemble())
	}
	br := p.At(9)
	if br.Op != OpBrab || br.Guard != P(0) || br.Target != 3 {
		t.Errorf("predicated branch wrong: %+v", *br)
	}
	// Reassembling the disassembly of each instruction must not error for
	// the ALU/memory subset (labels become numeric targets, so skip
	// branches).
	for i := 0; i < p.Len(); i++ {
		in := p.At(i)
		if in.Op.IsBranch() {
			continue
		}
		line := in.String()
		if _, err := Assemble("re", line+"\nexit"); err != nil {
			t.Errorf("instr %d: %q does not reassemble: %v", i, line, err)
		}
	}
}

func TestAssembleImmediateAutoselect(t *testing.T) {
	p := MustAssemble("imm", `
  add r0, r1, 5
  add r0, r1, r2
  setp.eq p0, r0, 0
  setp.eq p0, r0, r1
  exit`)
	wants := []Op{OpAddI, OpAdd, OpSetPI, OpSetP, OpExit}
	for i, w := range wants {
		if p.At(i).Op != w {
			t.Errorf("instr %d = %v, want %v", i, p.At(i).Op, w)
		}
	}
}

func TestAssembleMemoryForms(t *testing.T) {
	p := MustAssemble("mem", `
  ld.global.u64 r0, [r1+8]
  ld.shared.u16 r2, [r3-4]
  ld.stage.u8 r4, [r5]
  st.global.u32 [r1+12], r0
  st.stage.u64 [r5+0], r4
  atom.add.u32 r6, [r1+4], r0
  exit`)
	checks := []struct {
		op    Op
		width uint8
		imm   int64
	}{
		{OpLdGlobal, 8, 8},
		{OpLdShared, 2, -4},
		{OpLdStage, 1, 0},
		{OpStGlobal, 4, 12},
		{OpStStage, 8, 0},
		{OpAtomAdd, 4, 4},
	}
	for i, c := range checks {
		in := p.At(i)
		if in.Op != c.op || in.Width != c.width || in.Imm != c.imm {
			t.Errorf("instr %d: got %v w=%d imm=%d, want %v w=%d imm=%d",
				i, in.Op, in.Width, in.Imm, c.op, c.width, c.imm)
		}
	}
}

func TestAssembleGuards(t *testing.T) {
	p := MustAssemble("g", `
  setp.eq p1, r0, 0
  @p1 add r0, r0, 1
  @!p1 sub r0, r0, 1
  exit`)
	if in := p.At(1); in.Guard != P(1) || in.GuardNeg {
		t.Errorf("positive guard wrong: %+v", *in)
	}
	if in := p.At(2); in.Guard != P(1) || !in.GuardNeg {
		t.Errorf("negative guard wrong: %+v", *in)
	}
}

func TestAssemblePredicateOps(t *testing.T) {
	p := MustAssemble("p", `
  pand p0, p1, p2
  por p1, p2, p3
  pnot p2, p0
  vote.all p3, p0
  vote.any p0, p3
  sel r0, p0, r1, r2
  exit`)
	wants := []Op{OpPAnd, OpPOr, OpPNot, OpVoteAll, OpVoteAny, OpSel}
	for i, w := range wants {
		if p.At(i).Op != w {
			t.Errorf("instr %d = %v, want %v", i, p.At(i).Op, w)
		}
	}
}

func TestAssembleRegDirective(t *testing.T) {
	p := MustAssemble("regs", ".reg 32\n mov r0, r1\n exit")
	if p.NumReg != 32 {
		t.Errorf("NumReg = %d, want 32", p.NumReg)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r0, r1",
		"mov r999, r0",
		"ld.global r0, [r1]",      // missing width
		"ld.global.u32 r0, r1",    // missing brackets
		"setp.zz p0, r0, r1",      // bad cmp
		"@p9 add r0, r0, r1",      // bad predicate
		".reg abc",                // bad directive arg
		"min r0, r1, 5",           // min has no immediate form
		"bra",                     // missing label
		"label with spaces: exit", // bad label
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src+"\nexit"); err == nil {
			t.Errorf("%q assembled without error", src)
		}
	}
}

func TestDisassembleStable(t *testing.T) {
	p := MustAssemble("d", `
  movi r0, 7
  mov r1, %lane
  setp.lts p0, r1, r0
  @p0 bra skip
  add r1, r1, r0
skip:
  exit`)
	d := p.Disassemble()
	for _, want := range []string{"movi r0, 7", "setp.lts p0, r1, r0", "brab p0, 5", "exit"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestRegStringAndSpecials(t *testing.T) {
	if R(3).String() != "r3" {
		t.Errorf("R(3) = %q", R(3))
	}
	if RegTid.String() != "%tid" || RegParam0.String() != "%p0" {
		t.Errorf("special names wrong: %q %q", RegTid, RegParam0)
	}
	if RegNone.String() != "_" {
		t.Errorf("RegNone = %q", RegNone)
	}
	if !R(3).IsGeneral() || RegTid.IsGeneral() {
		t.Error("IsGeneral misclassifies")
	}
	if RegLane.SpecialIndex() != 4 {
		t.Errorf("RegLane index = %d", RegLane.SpecialIndex())
	}
}

func TestDstSrcRegs(t *testing.T) {
	in := Instr{Op: OpMad, Dst: R(0), SrcA: R(1), SrcB: RegTid, SrcC: R(2), Guard: PredNone}
	var buf []Reg
	if d := in.DstRegs(buf); len(d) != 1 || d[0] != R(0) {
		t.Errorf("DstRegs = %v", d)
	}
	if s := in.SrcRegs(buf); len(s) != 2 {
		t.Errorf("SrcRegs = %v (special regs must be excluded)", s)
	}
}

func TestGuardOnEmptyBuilder(t *testing.T) {
	if _, err := NewBuilder("e").WithGuard(P(0), false).Exit().Build(); err == nil {
		t.Error("guard before any instruction should error")
	}
}
