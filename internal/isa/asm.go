package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a textual program into a Program. The syntax mirrors the
// disassembly format:
//
//	; comment            // comment
//	.name vecadd         ; optional program name
//	.reg 16              ; optional minimum register count
//	loop:                ; label
//	  movi r1, 5
//	  mov  r2, %tid
//	  add  r3, r1, r2    ; register form
//	  add  r3, r3, 8     ; immediate form (auto-selected)
//	  setp.lt p0, r3, r4
//	  setp.ges p1, r3, 100
//	  sel r5, p0, r1, r2
//	  vote.all p1, p0
//	  @p0 bra loop       ; predicated (divergent) branch
//	  @!p1 add r1, r1, 1 ; guarded instruction
//	  ld.global.u32 r4, [r3+16]
//	  st.shared.u8 [r3], r4
//	  atom.add.u32 r1, [r2+8], r3
//	  bar
//	  exit
//
// This is the CUDA-extension-style interface the paper describes for
// supplying assist-warp subroutines (Section 3.2.3).
func Assemble(name, src string) (*Program, error) {
	a := &assembler{b: NewBuilder(name)}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	if a.minReg > p.NumReg {
		p.NumReg = a.minReg
	}
	if a.name != "" {
		p.Name = a.name
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for static subroutines.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b      *Builder
	minReg int
	name   string
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (a *assembler) line(raw string) error {
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Directives.
	if strings.HasPrefix(s, ".") {
		f := strings.Fields(s)
		switch f[0] {
		case ".name":
			if len(f) != 2 {
				return fmt.Errorf(".name takes one argument")
			}
			a.name = f[1]
			return nil
		case ".reg":
			if len(f) != 2 {
				return fmt.Errorf(".reg takes one argument")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n <= 0 || n > 256 {
				return fmt.Errorf("bad .reg count %q", f[1])
			}
			a.minReg = n
			return nil
		}
		return fmt.Errorf("unknown directive %q", s)
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t,") {
			return fmt.Errorf("bad label %q", label)
		}
		a.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return a.instr(s)
}

// parseGuard strips a leading @p / @!p guard and returns it.
func parseGuard(s string) (Pred, bool, string, error) {
	if !strings.HasPrefix(s, "@") {
		return PredNone, false, s, nil
	}
	s = s[1:]
	neg := false
	if strings.HasPrefix(s, "!") {
		neg = true
		s = s[1:]
	}
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return PredNone, false, "", fmt.Errorf("guard with no instruction")
	}
	p, err := parsePred(s[:i])
	if err != nil {
		return PredNone, false, "", err
	}
	return p, neg, strings.TrimSpace(s[i:]), nil
}

func parsePred(s string) (Pred, error) {
	if len(s) >= 2 && s[0] == 'p' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumPredRegs {
			return P(n), nil
		}
	}
	return PredNone, fmt.Errorf("bad predicate register %q", s)
}

var specialRegs = map[string]Reg{
	"%tid": RegTid, "%ntid": RegNTid, "%ctaid": RegCtaid, "%ncta": RegNCta,
	"%lane": RegLane, "%warp": RegWarp, "%gtid": RegGtid, "%zero": RegZero,
	"%p0": RegParam0, "%p1": RegParam1, "%p2": RegParam2, "%p3": RegParam3,
}

func parseReg(s string) (Reg, error) {
	if r, ok := specialRegs[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 256 {
			return R(n), nil
		}
	}
	return RegNone, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// operand is either a register or an immediate.
type operand struct {
	reg   Reg
	imm   int64
	isImm bool
}

func parseOperand(s string) (operand, error) {
	if r, err := parseReg(s); err == nil {
		return operand{reg: r}, nil
	}
	v, err := parseImm(s)
	if err != nil {
		return operand{}, fmt.Errorf("bad operand %q", s)
	}
	return operand{imm: v, isImm: true}, nil
}

// parseMemRef parses "[rX+off]" or "[rX]" or "[rX-off]".
func parseMemRef(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return RegNone, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	var regPart, offPart string
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, offPart = inner[:i], inner[i+1:]
	} else {
		regPart = inner
	}
	r, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return RegNone, 0, err
	}
	var off int64
	if offPart != "" {
		off, err = parseImm(strings.TrimSpace(offPart))
		if err != nil {
			return RegNone, 0, err
		}
	}
	return r, sign * off, nil
}

func parseWidthSuffix(s string) (uint8, error) {
	switch s {
	case "u8":
		return 1, nil
	case "u16":
		return 2, nil
	case "u32":
		return 4, nil
	case "u64":
		return 8, nil
	}
	return 0, fmt.Errorf("bad width suffix %q", s)
}

var cmpByName = map[string]CmpOp{
	"eq": CmpEQ, "ne": CmpNE, "lt": CmpLT, "le": CmpLE, "gt": CmpGT, "ge": CmpGE,
	"lts": CmpLTS, "les": CmpLES, "gts": CmpGTS, "ges": CmpGES,
}

// twoOpALU maps mnemonics to their register/immediate op pair.
var twoOpALU = map[string][2]Op{
	"add": {OpAdd, OpAddI},
	"sub": {OpSub, OpSubI},
	"mul": {OpMul, OpMulI},
	"and": {OpAnd, OpAndI},
	"or":  {OpOr, OpOrI},
	"xor": {OpXor, OpXorI},
	"shl": {OpShl, OpShlI},
	"shr": {OpShr, OpShrI},
	"min": {OpMin, OpNop},
	"max": {OpMax, OpNop},
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

func (a *assembler) instr(s string) error {
	guard, guardNeg, rest, err := parseGuard(s)
	if err != nil {
		return err
	}
	s = rest
	var mnem, argStr string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnem, argStr = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mnem = s
	}
	args := splitArgs(argStr)
	applyGuard := func() {
		if guard != PredNone {
			a.b.WithGuard(guard, guardNeg)
		}
	}

	// Memory ops: mnemonic carries dotted suffixes.
	dot := strings.Split(mnem, ".")
	switch dot[0] {
	case "ld", "st":
		if len(dot) != 3 {
			return fmt.Errorf("memory op needs space.width suffixes: %q", mnem)
		}
		width, err := parseWidthSuffix(dot[2])
		if err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("%s takes 2 operands", mnem)
		}
		if dot[0] == "ld" {
			dst, err := parseReg(args[0])
			if err != nil {
				return err
			}
			addr, off, err := parseMemRef(args[1])
			if err != nil {
				return err
			}
			switch dot[1] {
			case "global":
				a.b.LdGlobal(dst, addr, off, width)
			case "shared":
				a.b.LdShared(dst, addr, off, width)
			case "stage":
				a.b.LdStage(dst, addr, off, width)
			default:
				return fmt.Errorf("bad memory space %q", dot[1])
			}
		} else {
			addr, off, err := parseMemRef(args[0])
			if err != nil {
				return err
			}
			src, err := parseReg(args[1])
			if err != nil {
				return err
			}
			switch dot[1] {
			case "global":
				a.b.StGlobal(addr, off, src, width)
			case "shared":
				a.b.StShared(addr, off, src, width)
			case "stage":
				a.b.StStage(addr, off, src, width)
			default:
				return fmt.Errorf("bad memory space %q", dot[1])
			}
		}
		applyGuard()
		return nil
	case "atom":
		if len(dot) != 3 || dot[1] != "add" {
			return fmt.Errorf("unsupported atomic %q", mnem)
		}
		width, err := parseWidthSuffix(dot[2])
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("atom.add takes 3 operands")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMemRef(args[1])
		if err != nil {
			return err
		}
		src, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.b.AtomAdd(dst, addr, off, src, width)
		applyGuard()
		return nil
	case "setp":
		if len(dot) != 2 {
			return fmt.Errorf("setp needs a comparison suffix")
		}
		cmp, ok := cmpByName[dot[1]]
		if !ok {
			return fmt.Errorf("bad comparison %q", dot[1])
		}
		if len(args) != 3 {
			return fmt.Errorf("setp takes 3 operands")
		}
		pd, err := parsePred(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		ob, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		if ob.isImm {
			a.b.SetPI(cmp, pd, ra, ob.imm)
		} else {
			a.b.SetP(cmp, pd, ra, ob.reg)
		}
		applyGuard()
		return nil
	case "vote":
		if len(dot) != 2 || len(args) != 2 {
			return fmt.Errorf("vote.{all,any} pd, pa")
		}
		pd, err := parsePred(args[0])
		if err != nil {
			return err
		}
		pa, err := parsePred(args[1])
		if err != nil {
			return err
		}
		switch dot[1] {
		case "all":
			a.b.VoteAll(pd, pa)
		case "any":
			a.b.VoteAny(pd, pa)
		default:
			return fmt.Errorf("bad vote mode %q", dot[1])
		}
		applyGuard()
		return nil
	case "sext":
		if len(dot) != 2 || len(args) != 2 {
			return fmt.Errorf("sext.uN rd, ra")
		}
		width, err := parseWidthSuffix(dot[1])
		if err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.b.Sext(rd, ra, width)
		applyGuard()
		return nil
	}

	switch mnem {
	case "mov", "movi":
		if len(args) != 2 {
			return fmt.Errorf("mov takes 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ob, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		if ob.isImm {
			a.b.MovI(rd, ob.imm)
		} else {
			a.b.Mov(rd, ob.reg)
		}
		applyGuard()
		return nil
	case "not", "ctz":
		if len(args) != 2 {
			return fmt.Errorf("%s takes 2 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if mnem == "not" {
			a.b.Not(rd, ra)
		} else {
			a.b.Ctz(rd, ra)
		}
		applyGuard()
		return nil
	case "ballot":
		if len(args) != 2 {
			return fmt.Errorf("ballot takes 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pa, err := parsePred(args[1])
		if err != nil {
			return err
		}
		a.b.Ballot(rd, pa)
		applyGuard()
		return nil
	case "shfl":
		if len(args) != 3 {
			return fmt.Errorf("shfl takes 3 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		ri, err := parseReg(args[2])
		if err != nil {
			return err
		}
		a.b.Shfl(rd, ra, ri)
		applyGuard()
		return nil
	case "sfu":
		if len(args) != 2 {
			return fmt.Errorf("sfu takes 2 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.b.Sfu(rd, ra)
		applyGuard()
		return nil
	case "mad":
		if len(args) != 4 {
			return fmt.Errorf("mad takes 4 operands")
		}
		var rs [4]Reg
		for i, arg := range args {
			r, err := parseReg(arg)
			if err != nil {
				return err
			}
			rs[i] = r
		}
		a.b.Mad(rs[0], rs[1], rs[2], rs[3])
		applyGuard()
		return nil
	case "sel":
		if len(args) != 4 {
			return fmt.Errorf("sel takes 4 operands")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pa, err := parsePred(args[1])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[2])
		if err != nil {
			return err
		}
		rb, err := parseReg(args[3])
		if err != nil {
			return err
		}
		a.b.Sel(rd, pa, ra, rb)
		applyGuard()
		return nil
	case "pand", "por":
		if len(args) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnem)
		}
		pd, err := parsePred(args[0])
		if err != nil {
			return err
		}
		pa, err := parsePred(args[1])
		if err != nil {
			return err
		}
		pb, err := parsePred(args[2])
		if err != nil {
			return err
		}
		if mnem == "pand" {
			a.b.PAnd(pd, pa, pb)
		} else {
			a.b.POr(pd, pa, pb)
		}
		applyGuard()
		return nil
	case "pnot":
		if len(args) != 2 {
			return fmt.Errorf("pnot takes 2 operands")
		}
		pd, err := parsePred(args[0])
		if err != nil {
			return err
		}
		pa, err := parsePred(args[1])
		if err != nil {
			return err
		}
		a.b.PNot(pd, pa)
		applyGuard()
		return nil
	case "bra":
		if len(args) != 1 {
			return fmt.Errorf("bra takes a label")
		}
		if guard != PredNone {
			a.b.BraP(guard, guardNeg, args[0])
		} else {
			a.b.Bra(args[0])
		}
		return nil
	case "bar":
		a.b.Bar()
		applyGuard()
		return nil
	case "exit":
		a.b.Exit()
		applyGuard()
		return nil
	case "nop":
		a.b.Nop()
		applyGuard()
		return nil
	}

	if ops, ok := twoOpALU[mnem]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		ob, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		if ob.isImm {
			if ops[1] == OpNop {
				return fmt.Errorf("%s has no immediate form", mnem)
			}
			a.b.aluI(ops[1], rd, ra, ob.imm)
		} else {
			a.b.alu2(ops[0], rd, ra, ob.reg)
		}
		applyGuard()
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mnem)
}
