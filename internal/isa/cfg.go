package isa

// Control-flow analysis: immediate post-dominators, used by the SIMT stack
// to pick reconvergence points for divergent branches (the standard
// PDOM-based reconvergence of GPGPU-Sim and real GPUs).

// exitNode is the virtual node every Exit (and the final instruction)
// flows to.

// successors returns the CFG successors of instruction i; the virtual exit
// node is represented by len(code).
func successors(code []Instr, i int) []int {
	n := len(code)
	in := &code[i]
	switch in.Op {
	case OpExit:
		return []int{n}
	case OpBra:
		if in.Guard == PredNone {
			return []int{int(in.Target)}
		}
		return orderedPair(int(in.Target), next(i, n))
	case OpBrab:
		return orderedPair(int(in.Target), next(i, n))
	default:
		return []int{next(i, n)}
	}
}

func next(i, n int) int {
	if i+1 >= n {
		return n // falls off the end: exit
	}
	return i + 1
}

func orderedPair(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}

// PostDominators computes, for every instruction, its immediate
// post-dominator: the first instruction control must pass through on every
// path to program exit. Divergent branches reconverge there. The virtual
// exit node is len(p.Code); an instruction whose ipdom is the exit node
// reconverges only at warp termination.
//
// Uses the classic iterative dataflow algorithm (O(n^2) worst case), which
// is fine for the small kernels and assist-warp subroutines in this ISA.
func PostDominators(p *Program) []int {
	n := len(p.Code)
	// pdom[i] = set of post-dominators of i, as a bitset; node n = exit.
	words := (n + 1 + 63) / 64
	full := make([]uint64, words)
	for i := 0; i <= n; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	pdom := make([][]uint64, n+1)
	for i := 0; i <= n; i++ {
		pdom[i] = make([]uint64, words)
		if i == n {
			pdom[i][n/64] = 1 << (n % 64) // exit post-dominates itself only
		} else {
			copy(pdom[i], full)
		}
	}
	tmp := make([]uint64, words)
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			succs := successors(p.Code, i)
			copy(tmp, full)
			for _, s := range succs {
				for w := range tmp {
					tmp[w] &= pdom[s][w]
				}
			}
			tmp[i/64] |= 1 << (i % 64) // every node post-dominates itself
			for w := range tmp {
				if tmp[w] != pdom[i][w] {
					copy(pdom[i], tmp)
					changed = true
					break
				}
			}
		}
	}
	// Immediate post-dominator: the closest strict post-dominator. For
	// straight-line reconvergence the nearest one in instruction order
	// after i works because post-dominators of a node form a chain.
	ipdom := make([]int, n)
	for i := 0; i < n; i++ {
		ip := n
		for j := 0; j <= n; j++ {
			if j == i {
				continue
			}
			if pdom[i][j/64]&(1<<(j%64)) != 0 {
				// candidate strict post-dominator; the immediate one is
				// the candidate post-dominated by all other candidates,
				// i.e. the one with the smallest post-dominator set.
				if ip == n || popcountLess(pdom[j], pdom[ip]) {
					ip = j
				}
			}
		}
		ipdom[i] = ip
	}
	return ipdom
}

// popcountLess reports whether set a has strictly more members than set b —
// in a post-dominator chain the immediate post-dominator has the largest
// set (it is post-dominated by everything later in the chain... inverted:
// each post-dominator's own set includes all later ones, so the immediate
// one has the *largest* set).
func popcountLess(a, b []uint64) bool {
	ca, cb := 0, 0
	for i := range a {
		ca += popcount(a[i])
		cb += popcount(b[i])
	}
	return ca > cb
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
