package isa

import (
	"fmt"
	"strings"
	"sync"
)

// Reg names a register operand. Values below SpecialBase address the
// per-thread general register file (r0, r1, ...); values at or above it are
// read-only special registers supplied by the execution engine.
type Reg uint16

// RegNone marks an unused register operand.
const RegNone Reg = 0xFFFF

// SpecialBase is the first special-register number.
const SpecialBase Reg = 0x1000

// Special registers.
const (
	RegTid    Reg = SpecialBase + iota // linear thread index within the CTA
	RegNTid                            // number of threads per CTA
	RegCtaid                           // CTA index within the grid
	RegNCta                            // number of CTAs in the grid
	RegLane                            // lane index within the warp (0..31)
	RegWarp                            // warp index within the CTA
	RegGtid                            // global linear thread index
	RegZero                            // always zero
	RegParam0                          // kernel parameter registers
	RegParam1
	RegParam2
	RegParam3
	specialEnd
)

// NumSpecial is the count of special registers.
const NumSpecial = int(specialEnd - SpecialBase)

// R returns the i'th general register.
func R(i int) Reg { return Reg(i) }

// IsGeneral reports whether r names a general (writable) register.
func (r Reg) IsGeneral() bool { return r < SpecialBase }

// GeneralIndex returns the general register file index; callers must check
// IsGeneral first.
func (r Reg) GeneralIndex() int { return int(r) }

// SpecialIndex returns the index into the special register set.
func (r Reg) SpecialIndex() int { return int(r - SpecialBase) }

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "_"
	case r.IsGeneral():
		return fmt.Sprintf("r%d", int(r))
	}
	names := [...]string{"%tid", "%ntid", "%ctaid", "%ncta", "%lane", "%warp", "%gtid", "%zero", "%p0", "%p1", "%p2", "%p3"}
	i := r.SpecialIndex()
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%%sr%d", i)
}

// Pred names a predicate register. Each thread has NumPredRegs one-bit
// predicate registers.
type Pred uint8

// PredNone marks an unpredicated instruction / unused predicate operand.
const PredNone Pred = 0xFF

// NumPredRegs is the number of per-thread predicate registers.
const NumPredRegs = 4

// P returns the i'th predicate register.
func P(i int) Pred { return Pred(i) }

// String returns the assembly name of the predicate register.
func (p Pred) String() string {
	if p == PredNone {
		return "_"
	}
	return fmt.Sprintf("p%d", uint8(p))
}

// Instr is a single decoded instruction. The layout is a superset of all
// op formats; unused fields hold their zero/None values.
type Instr struct {
	Op   Op
	Cmp  CmpOp // comparison for SetP/SetPI
	Dst  Reg
	SrcA Reg
	SrcB Reg
	SrcC Reg
	Imm  int64

	// Guard predicate: when Guard != PredNone the instruction executes
	// only in lanes where the predicate (xor GuardNeg) is true.
	Guard    Pred
	GuardNeg bool

	// Predicate operands for predicate-manipulating ops and Sel.
	PDst Pred
	PA   Pred
	PB   Pred

	// Width is the access size in bytes for memory ops (1, 2, 4 or 8)
	// and for Sext.
	Width uint8

	// Target is the branch destination (instruction index in the program).
	Target int32
}

// DstRegs appends the general registers written by the instruction to buf.
func (in *Instr) DstRegs(buf []Reg) []Reg {
	if in.Dst != RegNone && in.Dst.IsGeneral() {
		buf = append(buf, in.Dst)
	}
	return buf
}

// SrcRegs appends the general registers read by the instruction to buf.
func (in *Instr) SrcRegs(buf []Reg) []Reg {
	for _, r := range [...]Reg{in.SrcA, in.SrcB, in.SrcC} {
		if r != RegNone && r.IsGeneral() {
			buf = append(buf, r)
		}
	}
	return buf
}

// String renders the instruction in assembly syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Guard != PredNone {
		if in.GuardNeg {
			b.WriteString("@!")
		} else {
			b.WriteString("@")
		}
		b.WriteString(in.Guard.String())
		b.WriteString(" ")
	}
	switch in.Op {
	case OpSetP, OpSetPI:
		fmt.Fprintf(&b, "setp.%s %s, %s, ", in.Cmp, in.PDst, in.SrcA)
		if in.Op == OpSetPI {
			fmt.Fprintf(&b, "%d", in.Imm)
		} else {
			b.WriteString(in.SrcB.String())
		}
	case OpPAnd, OpPOr:
		fmt.Fprintf(&b, "%s %s, %s, %s", in.Op, in.PDst, in.PA, in.PB)
	case OpPNot:
		fmt.Fprintf(&b, "pnot %s, %s", in.PDst, in.PA)
	case OpVoteAll, OpVoteAny:
		fmt.Fprintf(&b, "%s %s, %s", in.Op, in.PDst, in.PA)
	case OpBallot:
		fmt.Fprintf(&b, "ballot %s, %s", in.Dst, in.PA)
	case OpShfl:
		fmt.Fprintf(&b, "shfl %s, %s, %s", in.Dst, in.SrcA, in.SrcB)
	case OpCtz:
		fmt.Fprintf(&b, "ctz %s, %s", in.Dst, in.SrcA)
	case OpSel:
		fmt.Fprintf(&b, "sel %s, %s, %s, %s", in.Dst, in.PA, in.SrcA, in.SrcB)
	case OpLdGlobal, OpLdShared, OpLdStage:
		fmt.Fprintf(&b, "%s.u%d %s, [%s%+d]", in.Op, in.Width*8, in.Dst, in.SrcA, in.Imm)
	case OpStGlobal, OpStShared, OpStStage:
		fmt.Fprintf(&b, "%s.u%d [%s%+d], %s", in.Op, in.Width*8, in.SrcA, in.Imm, in.SrcB)
	case OpAtomAdd:
		fmt.Fprintf(&b, "atom.add.u%d %s, [%s%+d], %s", in.Width*8, in.Dst, in.SrcA, in.Imm, in.SrcB)
	case OpBra:
		fmt.Fprintf(&b, "bra %d", in.Target)
	case OpBrab:
		fmt.Fprintf(&b, "brab %s, %d", in.Guard, in.Target)
	case OpBar, OpExit, OpNop:
		b.WriteString(in.Op.String())
	case OpMovI:
		fmt.Fprintf(&b, "movi %s, %d", in.Dst, in.Imm)
	case OpMov, OpNot:
		fmt.Fprintf(&b, "%s %s, %s", in.Op, in.Dst, in.SrcA)
	case OpSext:
		fmt.Fprintf(&b, "sext.u%d %s, %s", in.Width*8, in.Dst, in.SrcA)
	case OpMad:
		fmt.Fprintf(&b, "mad %s, %s, %s, %s", in.Dst, in.SrcA, in.SrcB, in.SrcC)
	default:
		if in.Op.HasImm() {
			// Print the register mnemonic ("add", not "addi"): the
			// assembler selects the immediate form from the operand.
			fmt.Fprintf(&b, "%s %s, %s, %d", strings.TrimSuffix(in.Op.String(), "i"), in.Dst, in.SrcA, in.Imm)
		} else {
			fmt.Fprintf(&b, "%s %s, %s, %s", in.Op, in.Dst, in.SrcA, in.SrcB)
		}
	}
	return b.String()
}

// Program is an ordered instruction sequence plus the static resource
// requirements the compiler would have computed.
type Program struct {
	Name   string
	Code   []Instr
	NumReg int // general registers per thread
	Labels map[string]int

	// ipdom caches the post-dominator table (see IPDom); programs are
	// immutable after assembly, so it is computed at most once.
	ipdomOnce sync.Once
	ipdom     []int

	// dec caches the predecoded superop form (see Decoded), computed at
	// most once like ipdom.
	decOnce sync.Once
	dec     *Decoded
}

// IPDom returns the immediate post-dominator table for p, computing and
// caching it on first use. Safe for concurrent use (routine programs are
// shared across simulators running in parallel sweeps).
func (p *Program) IPDom() []int {
	p.ipdomOnce.Do(func() { p.ipdom = PostDominators(p) })
	return p.ipdom
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at index i.
func (p *Program) At(i int) *Instr { return &p.Code[i] }

// Validate checks structural invariants: branch targets in range, register
// numbers within NumReg, sane widths. It returns the first problem found.
func (p *Program) Validate() error {
	if p.NumReg <= 0 || p.NumReg > 256 {
		return fmt.Errorf("isa: program %q: NumReg %d out of range (1..256)", p.Name, p.NumReg)
	}
	var regs []Reg
	for i := range p.Code {
		in := &p.Code[i]
		if in.Op.IsBranch() {
			if in.Target < 0 || int(in.Target) >= len(p.Code) {
				return fmt.Errorf("isa: program %q: instr %d: branch target %d out of range", p.Name, i, in.Target)
			}
		}
		if in.Op.IsMem() {
			switch in.Width {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("isa: program %q: instr %d: bad width %d", p.Name, i, in.Width)
			}
		}
		regs = regs[:0]
		regs = in.DstRegs(regs)
		regs = in.SrcRegs(regs)
		for _, r := range regs {
			if r.GeneralIndex() >= p.NumReg {
				return fmt.Errorf("isa: program %q: instr %d: register %s exceeds NumReg %d", p.Name, i, r, p.NumReg)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line with
// its index, suitable for debugging and golden tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := range p.Code {
		fmt.Fprintf(&b, "%4d: %s\n", i, p.Code[i].String())
	}
	return b.String()
}
