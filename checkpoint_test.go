package caba_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
)

func checkpointConfig() caba.Config {
	cfg := caba.QuickConfig()
	// Enough simulated cycles after the first snapshot that the watcher's
	// cancel reliably lands mid-run, not after completion.
	cfg.Scale = 0.05
	cfg.CheckpointEvery = 2_000
	cfg.FlightRecorderDepth = 32
	return cfg
}

// TestRunCheckpointedResumesMidRun: a checkpointed run interrupted
// mid-flight leaves a snapshot and a crash report behind; invoking it
// again resumes from the snapshot and converges to the bit-identical
// result of an uninterrupted run, then cleans both files up.
func TestRunCheckpointedResumesMidRun(t *testing.T) {
	cfg := checkpointConfig()
	straight, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "cell.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	// Interrupt as soon as the first periodic snapshot lands on disk, so
	// the second invocation genuinely resumes mid-run.
	go func() {
		for {
			if _, err := os.Stat(ckpt); err == nil {
				cancel()
				return
			}
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	res, err := caba.RunCheckpointed(ctx, cfg, caba.CABABDI, "PVC", 1, ckpt)
	if err == nil {
		// The run outpaced the watcher; the equivalence claim still holds.
		t.Log("run completed before the interrupt landed")
	} else {
		if !errors.Is(err, caba.ErrInterrupted) {
			t.Fatalf("interrupted run: %v, want ErrInterrupted", err)
		}
		if _, serr := os.Stat(ckpt); serr != nil {
			t.Fatalf("interrupted run must keep its snapshot: %v", serr)
		}
		crash, rerr := os.ReadFile(ckpt + ".crash")
		if rerr != nil {
			t.Fatalf("interrupted run must write a crash report: %v", rerr)
		}
		for _, want := range []string{"repro:", "error:", "app=PVC", "flight record"} {
			if !strings.Contains(string(crash), want) {
				t.Errorf("crash report missing %q:\n%s", want, crash)
			}
		}
		res, err = caba.RunCheckpointed(context.Background(), cfg, caba.CABABDI, "PVC", 1, ckpt)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
	}
	if res.Cycles != straight.Cycles || res.IPC != straight.IPC {
		t.Errorf("resumed run: %d cycles IPC %v, straight run: %d cycles IPC %v",
			res.Cycles, res.IPC, straight.Cycles, straight.IPC)
	}
	if !reflect.DeepEqual(res.Stats, straight.Stats) {
		t.Error("resumed run statistics differ from the uninterrupted run")
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Error("snapshot not removed after a successful run")
	}
	if _, err := os.Stat(ckpt + ".crash"); !errors.Is(err, os.ErrNotExist) {
		t.Error("crash report not removed after a successful run")
	}
}

// TestRunCheckpointedToleratesCorruptSnapshot: a resume file that does not
// decode (torn write, foreign blob) must not brick the cell — the run
// drops it and starts from cycle zero, still producing the exact
// uninterrupted-run result.
func TestRunCheckpointedToleratesCorruptSnapshot(t *testing.T) {
	cfg := checkpointConfig()
	cfg.Scale = 0.01
	straight, err := caba.Run(cfg, caba.Base, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "cell.ckpt")
	if err := os.WriteFile(ckpt, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := caba.RunCheckpointed(context.Background(), cfg, caba.Base, "PVC", 1, ckpt)
	if err != nil {
		t.Fatalf("run with corrupt snapshot: %v", err)
	}
	if res.Cycles != straight.Cycles || !reflect.DeepEqual(res.Stats, straight.Stats) {
		t.Error("run after dropping a corrupt snapshot differs from a clean run")
	}
}
