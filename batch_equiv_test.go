package caba_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	caba "github.com/caba-sim/caba"
)

// TestBatchGoldenEquivalence is the block-batched issue engine's contract
// at the full-simulator level: Config.BatchIssue must be invisible in the
// results. FuzzStepRun pins the macro-step≡per-step invariant on one
// Exec; this test closes the loop over the whole machine — the window
// establishment scan, the precomputed issue schedule, the side-effect
// replay of issue-slot stats and per-warp stall attribution — by running
// app×design pairs with batching on and off across SMWorkers {1,4} ×
// FastForward {on,off} and requiring the Result, every raw counter in
// Metrics, and the full per-warp stall-attribution report to match
// exactly, not approximately.
func TestBatchGoldenEquivalence(t *testing.T) {
	pairs := []struct {
		app    string
		design caba.Design
	}{
		{"sssp", caba.Base},   // memory-bound, no compression machinery
		{"PVC", caba.CABABDI}, // assist warps + cross-SM atomics
		{"KM", caba.IdealBDI}, // zero-latency decompression design
	}
	for _, p := range pairs {
		for _, workers := range []int{1, 4} {
			for _, ff := range []bool{true, false} {
				p, workers, ff := p, workers, ff
				name := fmt.Sprintf("%s_%s_w%d_ff%v", p.app, p.design.Name, workers, ff)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					run := func(batch bool) *caba.Result {
						t.Helper()
						cfg := caba.QuickConfig()
						cfg.Scale = 0.03
						cfg.BatchIssue = batch
						cfg.SMWorkers = workers
						cfg.FastForward = ff
						cfg.AttributeStalls = true
						r, err := caba.Run(cfg, p.design, p.app, 1)
						if err != nil {
							t.Fatalf("BatchIssue=%v: %v", batch, err)
						}
						return r
					}
					batched := run(true)
					ref := run(false)
					if batched.Cycles != ref.Cycles {
						t.Errorf("cycles diverge: batched %d, per-cycle %d", batched.Cycles, ref.Cycles)
					}
					if batched.IPC != ref.IPC {
						t.Errorf("IPC diverges: %v != %v", batched.IPC, ref.IPC)
					}
					if batched.BandwidthUtil != ref.BandwidthUtil {
						t.Errorf("bandwidth utilization diverges: %v != %v", batched.BandwidthUtil, ref.BandwidthUtil)
					}
					if batched.CompressionRatio != ref.CompressionRatio {
						t.Errorf("compression ratio diverges: %v != %v", batched.CompressionRatio, ref.CompressionRatio)
					}
					if batched.EnergyNJ != ref.EnergyNJ || batched.DRAMEnergyNJ != ref.DRAMEnergyNJ {
						t.Errorf("energy diverges: total %v != %v, DRAM %v != %v",
							batched.EnergyNJ, ref.EnergyNJ, batched.DRAMEnergyNJ, ref.DRAMEnergyNJ)
					}
					if batched.FFSkips != ref.FFSkips || batched.FFCycles != ref.FFCycles {
						t.Errorf("fast-forward skips diverge: %d/%d != %d/%d",
							batched.FFSkips, batched.FFCycles, ref.FFSkips, ref.FFCycles)
					}
					for _, d := range batched.Stats.Diff(ref.Stats) {
						t.Errorf("stats diverge: %s", d)
					}
					if !reflect.DeepEqual(batched.Stalls, ref.Stalls) {
						t.Errorf("stall attribution diverges:\nbatched: %+v\nper-cycle: %+v", batched.Stalls, ref.Stalls)
					}
				})
			}
		}
	}
}

// TestBatchSnapshotResume covers the remaining batch-window snapshot
// corner at the public API level: a checkpointed batch-issue run that is
// never interrupted, and one resumed from its own mid-run snapshot, both
// converge to the uncheckpointed result (windows are strategy-only state
// — never serialized, re-derived after restore).
func TestBatchSnapshotResume(t *testing.T) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	cfg.BatchIssue = true
	cfg.CheckpointEvery = 2_000
	straight, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir() + "/batch.ckpt"
	res, err := caba.RunCheckpointed(context.Background(), cfg, caba.CABABDI, "PVC", 1, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != straight.Cycles || !reflect.DeepEqual(res.Stats, straight.Stats) {
		t.Error("checkpointed batch run diverged from plain run")
	}
}
