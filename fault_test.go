package caba_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/faults"
)

// faultConfig is a small CABA run with bit-flip, metadata-corruption and
// response-delay injection active. Response DROPS are deliberately absent
// here: they wedge warps by design and belong to the wedge tests below.
func faultConfig(smWorkers int) caba.Config {
	cfg := caba.Baseline()
	cfg.Scale = 0.03
	cfg.SMWorkers = smWorkers
	cfg.Faults = faults.Config{
		Seed:              42,
		BitFlipRate:       0.05,
		MDCorruptRate:     0.02,
		ResponseDelayRate: 0.01,
	}
	return cfg
}

// TestFaultInjectionDeterminism: the same fault seed and config must
// produce the identical fault campaign — same injected/detected/recovered
// counts and bit-identical statistics — regardless of how many SM-tick
// workers run the simulation.
func TestFaultInjectionDeterminism(t *testing.T) {
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	var ref *caba.Result
	for _, w := range workerCounts {
		res, err := caba.Run(faultConfig(w), caba.CABABDI, "PVC", 1)
		if err != nil {
			t.Fatalf("SMWorkers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			if res.FaultsInjected == 0 {
				t.Fatal("no faults injected; the campaign config is not exercising the sites")
			}
			if res.FaultsDetected == 0 || res.FaultsRecovered == 0 {
				t.Fatalf("faults injected (%d) but detected=%d recovered=%d",
					res.FaultsInjected, res.FaultsDetected, res.FaultsRecovered)
			}
			t.Logf("campaign: %d injected, %d detected, %d recovered",
				res.FaultsInjected, res.FaultsDetected, res.FaultsRecovered)
			continue
		}
		if res.FaultsInjected != ref.FaultsInjected ||
			res.FaultsDetected != ref.FaultsDetected ||
			res.FaultsRecovered != ref.FaultsRecovered {
			t.Errorf("SMWorkers=%d: campaign diverged: injected %d/%d detected %d/%d recovered %d/%d",
				w, res.FaultsInjected, ref.FaultsInjected,
				res.FaultsDetected, ref.FaultsDetected,
				res.FaultsRecovered, ref.FaultsRecovered)
		}
		for _, d := range ref.Stats.Diff(res.Stats) {
			t.Errorf("SMWorkers=%d: stats diverge: %s", w, d)
		}
	}
}

// TestDroppedResponsesWedge: with every memory response dropped, the
// waiting warps can never make progress. The wedge detector must convert
// the would-be infinite hang into a structured error — under parallel
// ticking too — rather than spinning to the cycle limit.
func TestDroppedResponsesWedge(t *testing.T) {
	for _, w := range []int{1, 4} {
		cfg := faultConfig(w)
		cfg.Faults = faults.Config{Seed: 7, ResponseDropRate: 1.0}
		_, err := caba.Run(cfg, caba.Base, "PVC", 1)
		if err == nil {
			t.Fatalf("SMWorkers=%d: run completed despite dropping every response", w)
		}
		if !strings.Contains(err.Error(), "wedged") {
			t.Fatalf("SMWorkers=%d: err = %v, want a wedge diagnosis", w, err)
		}
		if !strings.Contains(err.Error(), "dropped") {
			t.Errorf("SMWorkers=%d: err = %v, want it to count dropped responses", w, err)
		}
	}
}

// TestWedgeErrorDeterminism: the wedge diagnosis itself is part of the
// determinism contract — same seed, same error, same cycle, at any
// worker count and with the fast-forward engine on or off.
func TestWedgeErrorDeterminism(t *testing.T) {
	msg := func(w int, ff bool) string {
		cfg := faultConfig(w)
		cfg.FastForward = ff
		cfg.Faults = faults.Config{Seed: 7, ResponseDropRate: 0.5}
		_, err := caba.Run(cfg, caba.Base, "PVC", 1)
		if err == nil {
			t.Fatalf("SMWorkers=%d ff=%v: expected a wedge", w, ff)
		}
		return err.Error()
	}
	ref := msg(1, false)
	for _, v := range []struct {
		w  int
		ff bool
	}{{4, false}, {1, true}, {4, true}} {
		if got := msg(v.w, v.ff); got != ref {
			t.Errorf("wedge error differs at SMWorkers=%d ff=%v:\n  ref %s\n  got %s", v.w, v.ff, ref, got)
		}
	}
}

// TestRunContextDeadline: a context deadline interrupts a run and the
// error wraps both the context cause and ErrInterrupted.
func TestRunContextDeadline(t *testing.T) {
	cfg := caba.Baseline()
	cfg.Scale = 0.05
	cfg.SMWorkers = 1
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := caba.RunContext(ctx, cfg, caba.CABABDI, "PVC", 1)
	if err == nil {
		t.Fatal("run completed despite a 1ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, caba.ErrInterrupted) {
		t.Fatalf("err = %v, want DeadlineExceeded wrapping ErrInterrupted", err)
	}
}

// TestFaultInjectionBatchDeterminism: the block-batched issue engine
// must replay the identical fault campaign the unbatched engine does —
// same injected/detected/recovered counts and bit-identical statistics —
// at any SM-tick worker count. Batching reorders work within a cycle,
// never across the fault stream.
func TestFaultInjectionBatchDeterminism(t *testing.T) {
	run := func(batch bool, workers int) *caba.Result {
		t.Helper()
		cfg := faultConfig(workers)
		cfg.BatchIssue = batch
		res, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
		if err != nil {
			t.Fatalf("BatchIssue=%v SMWorkers=%d: %v", batch, workers, err)
		}
		return res
	}
	ref := run(false, 1)
	if ref.FaultsInjected == 0 || ref.FaultsDetected == 0 || ref.FaultsRecovered == 0 {
		t.Fatalf("reference campaign inactive: injected=%d detected=%d recovered=%d",
			ref.FaultsInjected, ref.FaultsDetected, ref.FaultsRecovered)
	}
	for _, v := range []struct {
		batch   bool
		workers int
	}{{true, 1}, {true, 4}, {false, 4}} {
		res := run(v.batch, v.workers)
		if res.FaultsInjected != ref.FaultsInjected ||
			res.FaultsDetected != ref.FaultsDetected ||
			res.FaultsRecovered != ref.FaultsRecovered {
			t.Errorf("BatchIssue=%v SMWorkers=%d: campaign diverged: injected %d/%d detected %d/%d recovered %d/%d",
				v.batch, v.workers,
				res.FaultsInjected, ref.FaultsInjected,
				res.FaultsDetected, ref.FaultsDetected,
				res.FaultsRecovered, ref.FaultsRecovered)
		}
		for _, d := range ref.Stats.Diff(res.Stats) {
			t.Errorf("BatchIssue=%v SMWorkers=%d: stats diverge: %s", v.batch, v.workers, d)
		}
	}
}

// TestWedgeErrorBatchDeterminism: the wedge diagnosis is identical with
// block-batched issue on or off — the deterministic error string is part
// of what makes a wedge safely non-retryable for the sweep layers.
func TestWedgeErrorBatchDeterminism(t *testing.T) {
	msg := func(batch bool, workers int) string {
		cfg := faultConfig(workers)
		cfg.BatchIssue = batch
		cfg.Faults = faults.Config{Seed: 7, ResponseDropRate: 0.5}
		_, err := caba.Run(cfg, caba.Base, "PVC", 1)
		if err == nil {
			t.Fatalf("BatchIssue=%v SMWorkers=%d: expected a wedge", batch, workers)
		}
		return err.Error()
	}
	ref := msg(false, 1)
	for _, v := range []struct {
		batch   bool
		workers int
	}{{true, 1}, {true, 4}} {
		if got := msg(v.batch, v.workers); got != ref {
			t.Errorf("wedge error differs at BatchIssue=%v SMWorkers=%d:\n  ref %s\n  got %s",
				v.batch, v.workers, ref, got)
		}
	}
}
