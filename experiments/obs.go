package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	caba "github.com/caba-sim/caba"
)

// --- Observability deep-dive: one cell, fully instrumented ---
//
// The sweep figures aggregate end-of-run statistics across a grid. ObsRun
// is the complement: it re-runs ONE grid cell with the observability
// layer fully enabled — cycle-sampled metrics, per-warp stall
// attribution, Perfetto trace export — and renders the Figure-1 issue
// breakdown as a time-series instead of a single bar, so phase behavior
// (ramp-up, steady state, drain, assist-warp bursts) becomes visible.

// ObsResult carries the artifacts of one instrumented run.
type ObsResult struct {
	// Result is the simulation outcome, with Series and Stalls populated.
	Result *caba.Result
	// MetricsPath is the JSONL metrics time-series written under Dir.
	MetricsPath string
	// TracePath is the Chrome-trace/Perfetto file written under Dir.
	TracePath string
}

// obsDesigns lists the designs the -obs mode accepts by name.
var obsDesigns = []caba.Design{
	caba.Base, caba.HWBDIMem, caba.HWBDI, caba.CABABDI, caba.IdealBDI,
	caba.CABAFPC, caba.CABACPack, caba.CABABest,
}

// ObsDesign resolves a design name (as printed in the figures, e.g.
// "CABA-BDI") for the -obs mode. The second result reports whether the
// name is known.
func ObsDesign(name string) (caba.Design, bool) {
	for _, d := range obsDesigns {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return caba.Design{}, false
}

// ObsDesignNames returns the accepted -obs design names, for usage text.
func ObsDesignNames() []string {
	names := make([]string, len(obsDesigns))
	for i, d := range obsDesigns {
		names[i] = d.Name
	}
	return names
}

// ObsRun executes one (app, design) cell with observability enabled,
// writes the metrics series (JSONL) and execution trace (Chrome-trace
// JSON, loadable in Perfetto) under dir, and renders the
// utilization-breakdown time-series figure plus the stall-attribution
// table to o.Out. sampleEvery <= 0 picks a cadence that yields on the
// order of 60 rows for the run's length (two passes: a probe run is not
// needed because the cadence only shapes the figure, not the statistics
// — the bit-identical-stats invariant holds at every cadence).
func ObsRun(o Options, app string, design caba.Design, dir string, sampleEvery uint64) (*ObsResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: obs output dir: %w", err)
	}
	if sampleEvery == 0 {
		sampleEvery = defaultObsSampleEvery(o.Scale)
	}
	stem := sanitizeCell(app + "-" + design.Name)
	res := &ObsResult{
		MetricsPath: filepath.Join(dir, stem+".metrics.jsonl"),
		TracePath:   filepath.Join(dir, stem+".trace.json"),
	}
	cfg := o.cfg()
	cfg.SampleEvery = sampleEvery
	cfg.MetricsFile = res.MetricsPath
	cfg.TraceFile = res.TracePath
	cfg.AttributeStalls = true
	run := o.runHook
	if run == nil {
		run = caba.RunContext
	}
	r, err := run(context.Background(), cfg, design, app, o.Seed)
	if err != nil {
		return nil, err
	}
	res.Result = r

	out := o.out()
	fmt.Fprintf(out, "Observed run: %s under %s (scale %g, seed %d, sample every %d cycles)\n",
		app, design.Name, o.Scale, o.Seed, sampleEvery)
	fmt.Fprintf(out, "cycles %d  IPC %.3f  metrics -> %s  trace -> %s\n\n",
		r.Cycles, r.IPC, res.MetricsPath, res.TracePath)
	RenderSeriesFigure(out, r.Series)
	if r.Stalls != nil {
		fmt.Fprintln(out)
		r.Stalls.RenderTable(out, 10)
	}
	return res, nil
}

// defaultObsSampleEvery picks a sampling cadence that gives a readable
// figure (~tens of rows) for a quick-scale run, scaling with the working
// set so paper-scale runs do not produce thousands of rows.
func defaultObsSampleEvery(scale float64) uint64 {
	if scale <= 0 {
		scale = 1
	}
	every := uint64(2000 * scale * 10)
	if every < 500 {
		every = 500
	}
	return every
}

// sanitizeCell maps a cell label to a safe file stem.
func sanitizeCell(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// seriesBarWidth is the character width of the stacked issue-breakdown
// bar in the rendered time-series figure.
const seriesBarWidth = 50

// RenderSeriesFigure renders the metrics time-series as a text figure:
// one row per sample with a stacked issue-slot utilization bar (the
// Figure-1 categories over time) flanked by the window's IPC and the
// DRAM bus busy fraction. A nil or empty series renders a placeholder
// line instead of nothing, so callers need not special-case it.
func RenderSeriesFigure(w io.Writer, s *caba.MetricsSeries) {
	if s == nil || s.Len() == 0 {
		fmt.Fprintln(w, "(no metrics samples: run shorter than one sampling window)")
		return
	}
	fmt.Fprintf(w, "Issue-slot utilization over time (%c active, %c compute-stall, %c memory-stall, %c data-dep, %c idle)\n",
		barGlyphs[0], barGlyphs[1], barGlyphs[2], barGlyphs[3], barGlyphs[4])
	fmt.Fprintf(w, "%12s  %-*s %6s %6s %6s\n", "cycle", seriesBarWidth, "issue slots", "ipc", "dram", "awocc")
	for i := 0; i < s.Len(); i++ {
		row := s.At(i)
		fmt.Fprintf(w, "%12d  %s %6.2f %5.0f%% %5.0f%%\n",
			row.Cycle,
			stackedBar([]float64{row.IssueActive, row.IssueComp, row.IssueMem, row.IssueDep, row.IssueIdle}),
			row.IPC, 100*row.DRAMBusy, 100*row.AWOcc)
	}
}

// barGlyphs are the stacked-bar fill characters, in the Figure-1
// category order: active, compute stall, memory stall, data dep, idle.
var barGlyphs = [5]byte{'#', 'c', 'm', 'd', '.'}

// stackedBar renders fractions (summing to ~1) as a fixed-width stacked
// bar. Rounding error is absorbed by the last non-zero segment so the
// bar is always exactly seriesBarWidth characters.
func stackedBar(fracs []float64) string {
	var b [seriesBarWidth]byte
	pos := 0
	for i, f := range fracs {
		n := int(f*seriesBarWidth + 0.5)
		if i == len(fracs)-1 {
			n = seriesBarWidth - pos
		}
		if n > seriesBarWidth-pos {
			n = seriesBarWidth - pos
		}
		for j := 0; j < n; j++ {
			b[pos] = barGlyphs[i]
			pos++
		}
	}
	for pos < seriesBarWidth {
		b[pos] = barGlyphs[len(barGlyphs)-1]
		pos++
	}
	return string(b[:])
}
