// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 2 and Section 6) on the simulator. Each FigN
// function runs the required (application x design) grid — in parallel —
// and renders the same rows/series the paper reports, returning the data
// for programmatic checks (bench_test.go asserts the headline shapes).
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/workloads"
)

// Options configures an experiment sweep.
type Options struct {
	// Context, when non-nil, bounds the whole sweep: once it is
	// cancelled, no new cell is dispatched, in-flight runs are
	// interrupted at their next poll, and sweep returns the completed
	// cells alongside an error joining ctx's cause. Nil means no
	// external cancellation (context.Background()).
	Context context.Context
	// Scale shrinks working sets; 1.0 is paper scale. The default keeps a
	// laptop run in minutes while preserving shapes.
	Scale float64
	// Seed drives the synthetic data generators.
	Seed int64
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// Parallelism caps the sweep's total worker-goroutine budget:
	// concurrent simulations times SM-tick workers per simulation (0 =
	// GOMAXPROCS). Without the cap, every concurrent simulation would
	// start its own GOMAXPROCS-sized SM worker pool and a grid sweep
	// would run GOMAXPROCS² goroutines.
	Parallelism int
	// Out receives the rendered tables (nil = discard).
	Out io.Writer

	// RunTimeout bounds each simulation's wall clock. A run that exceeds
	// it is interrupted, reported as that cell's error, and retried when
	// Retries allows. Zero disables the deadline.
	RunTimeout time.Duration
	// Retries re-attempts a failed run up to this many additional times
	// before the cell is declared broken.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 100ms when Retries > 0).
	RetryBackoff time.Duration
	// Checkpoint, when non-empty, persists every completed run to this
	// JSONL file as the sweep goes, and pre-loads it on start so an
	// interrupted sweep resumes where it stopped. The file's header
	// records Scale and Seed; resuming with different values is an error
	// (the cached cells would not match the requested sweep).
	//
	// It also enables mid-run cell snapshots: each in-flight simulation
	// checkpoints its complete state every CheckpointEvery cycles into
	// <Checkpoint>.d/<cell>.ckpt, so a cell that is killed, times out or
	// crashes resumes from its last snapshot on the next sweep instead of
	// restarting from cycle zero — and converges to the bit-identical
	// result an uninterrupted run produces.
	Checkpoint string
	// CheckpointEvery is the mid-run snapshot cadence in simulated cycles
	// (0 = a default suited to quick-scale runs). Only meaningful with
	// Checkpoint set.
	CheckpointEvery uint64

	// FarmURL, when non-empty, dispatches the sweep's cells to a farm
	// coordinator (cmd/farmd) at this base URL instead of simulating
	// in-process: cells are submitted once, simulated by whatever worker
	// fleet is attached to the coordinator, deduped through its
	// content-addressed result store, and collected here. Scale, Seed and
	// per-cell bandwidth scaling travel inside each cell; Parallel,
	// Parallelism, RunTimeout and Retries are local execution knobs and
	// do not apply (the coordinator's lease/retry policy governs).
	FarmURL string

	// runHook replaces the simulation entry point in tests.
	runHook func(ctx context.Context, cfg caba.Config, design caba.Design, app string, seed int64) (*caba.Result, error)

	// farmDegradedWarned dedupes the once-per-sweep warning printed when
	// the coordinator's X-Farm-Health header reports a non-ok state.
	farmDegradedWarned bool

	// farmShed records whether the last coordinator response carried
	// X-Farm-Shed — a long-poll answered immediately to shed load. The
	// status loop paces itself on it instead of re-polling instantly,
	// which would turn the coordinator's protection into a hammer.
	farmShed bool
}

// Defaults returns the standard quick-run options.
func Defaults(out io.Writer) Options {
	return Options{Scale: 0.2, Seed: 1, Parallel: 0, Out: out}
}

func (o *Options) cfg() caba.Config {
	c := caba.Baseline()
	if o.Scale > 0 {
		c.Scale = o.Scale
	}
	return c
}

func (o *Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o *Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// plan splits the Parallelism budget between sweep-level concurrency and
// per-simulation SM workers so their product never exceeds the budget.
// Independent simulations scale better than intra-simulation ticking (no
// cycle barriers), so the sweep level is filled first; leftover budget
// goes to SM workers only when the grid has fewer jobs than budget.
func (o *Options) plan(jobs int) (sims, smWorkers int) {
	budget := o.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	sims = o.workers()
	if sims > budget {
		sims = budget
	}
	if jobs > 0 && sims > jobs {
		sims = jobs
	}
	if sims < 1 {
		sims = 1
	}
	smWorkers = budget / sims
	if smWorkers < 1 {
		smWorkers = 1
	}
	return sims, smWorkers
}

// runKey identifies one simulation in a sweep.
type runKey struct {
	app     string
	design  string
	bwScale float64
}

// String renders the key as the stable "app/design@bw" checkpoint form.
func (k runKey) String() string {
	return k.app + "/" + k.design + "@" + strconv.FormatFloat(k.bwScale, 'g', -1, 64) + "x"
}

func parseRunKey(s string) (runKey, error) {
	slash := strings.Index(s, "/")
	at := strings.LastIndex(s, "@")
	if slash < 0 || at < slash || !strings.HasSuffix(s, "x") {
		return runKey{}, fmt.Errorf("experiments: malformed run key %q", s)
	}
	bw, err := strconv.ParseFloat(s[at+1:len(s)-1], 64)
	if err != nil {
		return runKey{}, fmt.Errorf("experiments: malformed run key %q: %w", s, err)
	}
	return runKey{app: s[:slash], design: s[slash+1 : at], bwScale: bw}, nil
}

// sweep runs every (app, design, bw) combination on a bounded worker
// pool. Failures never abort the grid: every run is panic-isolated,
// deadline-bounded (RunTimeout) and retried (Retries), and whatever
// still fails becomes one joined error returned ALONGSIDE the completed
// cells — callers render partial figures with holes rather than nothing.
// With Checkpoint set, completed cells are persisted as they finish and
// skipped on the next invocation.
func (o *Options) sweep(apps []string, designs []caba.Design, bws []float64) (map[runKey]*caba.Result, error) {
	if len(bws) == 0 {
		bws = []float64{1.0}
	}
	type job struct {
		key    runKey
		design caba.Design
	}
	results := make(map[runKey]*caba.Result, len(apps)*len(designs)*len(bws))
	ck, err := o.openCheckpoint(results)
	if err != nil {
		return nil, err
	}
	defer ck.close()
	done := make(map[runKey]bool, len(results))
	for k := range results {
		done[k] = true
	}

	if o.FarmURL != "" {
		err := o.farmSweep(apps, designs, bws, done, results, ck)
		return results, err
	}

	ctx := o.ctx()
	jobs := make(chan job)
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	sims, smWorkers := o.plan(len(apps)*len(designs)*len(bws) - len(results))
	for w := 0; w < sims; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := o.runOne(ctx, j.design, j.key, smWorkers)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: %w", j.key, err))
				} else {
					results[j.key] = res
					if werr := ck.append(j.key, res); werr != nil {
						errs = append(errs, werr)
					}
				}
				mu.Unlock()
			}
		}()
	}
	// Dispatch honors cancellation: once ctx ends, no further cell is
	// handed out — the sweep drains the in-flight runs (themselves
	// interrupted through the same ctx) and returns partial results.
	cancelled := false
dispatch:
	for _, a := range apps {
		for _, d := range designs {
			for _, bw := range bws {
				key := runKey{a, d.Name, bw}
				if done[key] {
					continue
				}
				select {
				case jobs <- job{key, d}:
				case <-ctx.Done():
					cancelled = true
					break dispatch
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled || ctx.Err() != nil {
		errs = append(errs, fmt.Errorf("experiments: sweep cancelled: %w", context.Cause(ctx)))
	}
	return results, errors.Join(errs...)
}

// runOne executes a single grid cell with retry-with-backoff around the
// panic-isolated, deadline-bounded attempt.
func (o *Options) runOne(ctx context.Context, design caba.Design, key runKey, smWorkers int) (*caba.Result, error) {
	backoff := o.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var res *caba.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = o.attemptOne(ctx, design, key, smWorkers)
		// A wedge is a deterministic outcome of the cell's fault stream,
		// not a transient failure: retrying replays the exact same wedge,
		// so it is reported immediately with its retry budget unspent.
		// A cancelled sweep likewise must not retry (the next attempt
		// would fail the same way) nor sit out the backoff.
		var we *caba.WedgeError
		if err == nil || attempt >= o.Retries || errors.As(err, &we) || ctx.Err() != nil {
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("experiments: retry abandoned: %w", context.Cause(ctx))
		case <-time.After(backoff << attempt):
		}
	}
}

// attemptOne makes one panic-isolated, deadline-bounded simulation
// attempt. The recover here is the sweep's own safety net: the caba entry
// points already convert internal panics to errors, and this guard keeps
// a worker goroutine alive even if the conversion itself has a bug (or a
// test runHook panics).
func (o *Options) attemptOne(ctx context.Context, design caba.Design, key runKey, smWorkers int) (res *caba.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("experiments: run panicked: %v", r)
		}
	}()
	if o.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.RunTimeout)
		defer cancel()
	}
	cfg := o.cfg()
	cfg.BWScale = key.bwScale
	cfg.SMWorkers = smWorkers
	run := o.runHook
	if run == nil {
		run = func(ctx context.Context, cfg caba.Config, design caba.Design, app string, seed int64) (*caba.Result, error) {
			if path := o.cellCheckpointPath(key); path != "" {
				cfg.CheckpointEvery = o.CheckpointEvery
				if cfg.CheckpointEvery == 0 {
					cfg.CheckpointEvery = defaultCellCheckpointEvery
				}
				return caba.RunCheckpointed(ctx, cfg, design, app, seed, path)
			}
			return caba.RunContext(ctx, cfg, design, app, seed)
		}
	}
	return run(ctx, cfg, design, key.app, o.Seed)
}

// defaultCellCheckpointEvery is the mid-run snapshot cadence when the
// sweep enables cell checkpointing without choosing one: frequent enough
// that a killed quick-scale cell loses little work, sparse enough that
// serialization stays a rounding error next to simulation.
const defaultCellCheckpointEvery = 100_000

// cellCheckpointPath returns the mid-run snapshot file for one grid cell
// ("" when sweep checkpointing is off, or the snapshot directory cannot
// be created — the cell then just runs without mid-run resume).
func (o *Options) cellCheckpointPath(key runKey) string {
	if o.Checkpoint == "" {
		return ""
	}
	dir := o.Checkpoint + ".d"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, key.String())
	return filepath.Join(dir, name+".ckpt")
}

// --- Sweep checkpointing ---

// ckMeta is the checkpoint's header line: the sweep parameters the cached
// cells depend on.
type ckMeta struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
}

// ckLine is one JSONL checkpoint record: the header (first line) carries
// Meta, every other line one completed cell.
type ckLine struct {
	Meta   *ckMeta      `json:"meta,omitempty"`
	Key    string       `json:"key,omitempty"`
	Result *caba.Result `json:"result,omitempty"`
}

// checkpoint appends completed cells to the JSONL file. A nil receiver
// (no Checkpoint configured) is a no-op on every method.
type checkpoint struct {
	f   *os.File
	enc *json.Encoder
}

// openCheckpoint loads a prior checkpoint (if any) into results and
// returns an open appender. A header mismatch (different Scale/Seed) is
// an error: those cells belong to a different sweep.
func (o *Options) openCheckpoint(results map[runKey]*caba.Result) (*checkpoint, error) {
	if o.Checkpoint == "" {
		return nil, nil
	}
	meta := ckMeta{Scale: o.Scale, Seed: o.Seed}
	if raw, err := os.ReadFile(o.Checkpoint); err == nil && len(raw) > 0 {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		var header ckLine
		if err := dec.Decode(&header); err != nil || header.Meta == nil {
			return nil, fmt.Errorf("experiments: checkpoint %s: missing or malformed header", o.Checkpoint)
		}
		if *header.Meta != meta {
			return nil, fmt.Errorf("experiments: checkpoint %s was written for scale=%v seed=%d, this sweep uses scale=%v seed=%d — delete it or match the parameters",
				o.Checkpoint, header.Meta.Scale, header.Meta.Seed, meta.Scale, meta.Seed)
		}
		// intact tracks the byte offset just past the last whole record
		// (including its newline). A torn final line — the previous sweep
		// was killed mid-append — is both tolerated AND truncated away, so
		// the re-opened appender never writes a new record onto the tail
		// of a half-written one.
		intact := consumeNewlines(raw, dec.InputOffset())
		torn := false
		for {
			var line ckLine
			if err := dec.Decode(&line); err != nil {
				torn = !errors.Is(err, io.EOF)
				break
			}
			intact = consumeNewlines(raw, dec.InputOffset())
			if line.Key == "" || line.Result == nil {
				continue
			}
			key, err := parseRunKey(line.Key)
			if err != nil {
				return nil, fmt.Errorf("experiments: checkpoint %s: %w", o.Checkpoint, err)
			}
			results[key] = line.Result
		}
		if torn {
			if err := os.Truncate(o.Checkpoint, intact); err != nil {
				return nil, fmt.Errorf("experiments: checkpoint: truncating torn record: %w", err)
			}
		}
		f, err := os.OpenFile(o.Checkpoint, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("experiments: checkpoint: %w", err)
		}
		return &checkpoint{f: f, enc: json.NewEncoder(f)}, nil
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	f, err := os.OpenFile(o.Checkpoint, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	ck := &checkpoint{f: f, enc: json.NewEncoder(f)}
	if err := ck.enc.Encode(ckLine{Meta: &meta}); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	return ck, nil
}

// consumeNewlines extends a decoder offset past the record's trailing
// newline(s), so truncation at that offset keeps the file line-aligned.
func consumeNewlines(raw []byte, off int64) int64 {
	for off < int64(len(raw)) && (raw[off] == '\n' || raw[off] == '\r') {
		off++
	}
	return off
}

func (ck *checkpoint) append(key runKey, res *caba.Result) error {
	if ck == nil {
		return nil
	}
	if err := ck.enc.Encode(ckLine{Key: key.String(), Result: res}); err != nil {
		return fmt.Errorf("experiments: checkpoint write: %w", err)
	}
	return nil
}

func (ck *checkpoint) close() {
	if ck != nil {
		ck.f.Close()
	}
}

// appNames extracts names from descriptors.
func appNames(apps []*workloads.App) []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// CompressSuite returns the 20-application compression-study pool.
func CompressSuite() []string { return appNames(workloads.CompressApps()) }

// Fig1Suite returns the 27-application Figure 1 pool.
func Fig1Suite() []string { return appNames(workloads.Fig1Apps()) }

// geomean computes the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// mean computes the arithmetic mean.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// breakdownOf adapts the stats array for reporting.
func breakdownOf(r *caba.Result) [stats.NumStallKinds]float64 {
	return r.Stats.IssueBreakdown()
}
