// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 2 and Section 6) on the simulator. Each FigN
// function runs the required (application x design) grid — in parallel —
// and renders the same rows/series the paper reports, returning the data
// for programmatic checks (bench_test.go asserts the headline shapes).
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/workloads"
)

// Options configures an experiment sweep.
type Options struct {
	// Scale shrinks working sets; 1.0 is paper scale. The default keeps a
	// laptop run in minutes while preserving shapes.
	Scale float64
	// Seed drives the synthetic data generators.
	Seed int64
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// Parallelism caps the sweep's total worker-goroutine budget:
	// concurrent simulations times SM-tick workers per simulation (0 =
	// GOMAXPROCS). Without the cap, every concurrent simulation would
	// start its own GOMAXPROCS-sized SM worker pool and a grid sweep
	// would run GOMAXPROCS² goroutines.
	Parallelism int
	// Out receives the rendered tables (nil = discard).
	Out io.Writer
}

// Defaults returns the standard quick-run options.
func Defaults(out io.Writer) Options {
	return Options{Scale: 0.2, Seed: 1, Parallel: 0, Out: out}
}

func (o *Options) cfg() caba.Config {
	c := caba.Baseline()
	if o.Scale > 0 {
		c.Scale = o.Scale
	}
	return c
}

func (o *Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o *Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// plan splits the Parallelism budget between sweep-level concurrency and
// per-simulation SM workers so their product never exceeds the budget.
// Independent simulations scale better than intra-simulation ticking (no
// cycle barriers), so the sweep level is filled first; leftover budget
// goes to SM workers only when the grid has fewer jobs than budget.
func (o *Options) plan(jobs int) (sims, smWorkers int) {
	budget := o.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	sims = o.workers()
	if sims > budget {
		sims = budget
	}
	if jobs > 0 && sims > jobs {
		sims = jobs
	}
	if sims < 1 {
		sims = 1
	}
	smWorkers = budget / sims
	if smWorkers < 1 {
		smWorkers = 1
	}
	return sims, smWorkers
}

// runKey identifies one simulation in a sweep.
type runKey struct {
	app     string
	design  string
	bwScale float64
}

// sweep runs every (app, design, bw) combination on a bounded worker
// pool. All failures are collected and returned together (errors.Join),
// so one bad configuration reports every broken cell of the grid instead
// of just the first one hit.
func (o *Options) sweep(apps []string, designs []caba.Design, bws []float64) (map[runKey]*caba.Result, error) {
	if len(bws) == 0 {
		bws = []float64{1.0}
	}
	type job struct {
		key    runKey
		design caba.Design
	}
	jobs := make(chan job)
	results := make(map[runKey]*caba.Result, len(apps)*len(designs)*len(bws))
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	sims, smWorkers := o.plan(len(apps) * len(designs) * len(bws))
	for w := 0; w < sims; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := o.cfg()
				cfg.BWScale = j.key.bwScale
				cfg.SMWorkers = smWorkers
				res, err := caba.Run(cfg, j.design, j.key.app, o.Seed)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("%s/%s@%vx: %w", j.key.app, j.key.design, j.key.bwScale, err))
				} else {
					results[j.key] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, a := range apps {
		for _, d := range designs {
			for _, bw := range bws {
				jobs <- job{runKey{a, d.Name, bw}, d}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// appNames extracts names from descriptors.
func appNames(apps []*workloads.App) []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// CompressSuite returns the 20-application compression-study pool.
func CompressSuite() []string { return appNames(workloads.CompressApps()) }

// Fig1Suite returns the 27-application Figure 1 pool.
func Fig1Suite() []string { return appNames(workloads.Fig1Apps()) }

// geomean computes the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// mean computes the arithmetic mean.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// breakdownOf adapts the stats array for reporting.
func breakdownOf(r *caba.Result) [stats.NumStallKinds]float64 {
	return r.Stats.IssueBreakdown()
}
