package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/farm"
)

// TestSweepContextCancel: cancelling the sweep's Context must stop
// dispatching promptly — not wait out each cell's RunTimeout — and
// return the completed cells with the cancellation joined into the
// error.
func TestSweepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	o := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard,
		Context: ctx,
		// A long RunTimeout that a prompt cancellation must NOT sit out.
		RunTimeout: time.Hour,
	}
	o.runHook = func(runCtx context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		if started.Add(1) == 1 {
			close(release) // first cell is in flight: cancel now
			<-runCtx.Done()
			return nil, fmt.Errorf("run aborted: %w", runCtx.Err())
		}
		return fakeResult(app, "Base"), nil
	}
	go func() {
		<-release
		cancel()
	}()

	start := time.Now()
	res, err := o.sweep([]string{"PVC", "SCP", "IIX", "MUM"}, []caba.Design{caba.Base}, nil)
	elapsed := time.Since(start)

	if elapsed > 10*time.Second {
		t.Fatalf("cancelled sweep took %v — it waited out timeouts instead of stopping", elapsed)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ctx.Err() joined in", err)
	}
	if !strings.Contains(err.Error(), "sweep cancelled") {
		t.Errorf("err = %v, want it to say the sweep was cancelled", err)
	}
	// Parallel=1 and the first cell blocks until cancellation: no later
	// cell may have been dispatched after cancel.
	if got := started.Load(); got != 1 {
		t.Errorf("runs started = %d, want 1 (dispatch must stop on cancel)", got)
	}
	if len(res) != 0 {
		// No cell completed here; the map must reflect that, not hang.
		t.Errorf("results = %d cells, want 0", len(res))
	}
}

// TestSweepContextCancelPartialResults: cells completed before the
// cancellation survive in the returned map.
func TestSweepContextCancelPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	o := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard, Context: ctx}
	o.runHook = func(runCtx context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		if done.Add(1) == 2 {
			cancel() // two cells done, then stop the world
		}
		return fakeResult(app, "Base"), nil
	}
	res, err := o.sweep([]string{"PVC", "SCP", "IIX", "MUM", "RAY"}, []caba.Design{caba.Base}, nil)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if len(res) < 2 || len(res) >= 5 {
		t.Fatalf("results = %d cells, want the pre-cancel completions (>=2, <5)", len(res))
	}
}

// TestCheckpointTornLineTruncated: a JSONL checkpoint whose final record
// was torn mid-write is both tolerated on load AND truncated, so the
// appended continuation produces a cleanly parseable file.
func TestCheckpointTornLineTruncated(t *testing.T) {
	path := t.TempDir() + "/runs.ckpt"
	o := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard, Checkpoint: path}
	o.runHook = func(_ context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		return fakeResult(app, "Base"), nil
	}
	if _, err := o.sweep([]string{"PVC", "SCP"}, []caba.Design{caba.Base}, nil); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the file the way kill -9 does: a trailing half-record.
	torn := append(append([]byte{}, intact...), []byte(`{"key":"IIX/Base@1x","result":{"app":"II`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the two intact cells load, the torn tail is dropped, and
	// the third cell is appended onto a clean boundary.
	var ran []string
	o2 := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard, Checkpoint: path}
	o2.runHook = func(_ context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		ran = append(ran, app)
		return fakeResult(app, "Base"), nil
	}
	res, err := o2.sweep([]string{"PVC", "SCP", "IIX"}, []caba.Design{caba.Base}, nil)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d cells, want 3", len(res))
	}
	if len(ran) != 1 || ran[0] != "IIX" {
		t.Fatalf("ran = %v, want only the cell missing from the checkpoint", ran)
	}

	// The file itself must now be pure intact JSONL: a third load sees
	// all three cells and no torn-line fallback.
	res3 := make(map[runKey]*caba.Result)
	ck, err := o2.openCheckpoint(res3)
	if err != nil {
		t.Fatalf("reloading repaired checkpoint: %v", err)
	}
	ck.close()
	if len(res3) != 3 {
		t.Fatalf("repaired checkpoint holds %d cells, want 3", len(res3))
	}
	raw, _ := os.ReadFile(path)
	if strings.Contains(string(raw), `"app":"II`+"\n") || strings.Contains(string(raw), `{"key":"IIX/Base@1x","result":{"app":"II{`) {
		t.Error("torn fragment survived in the checkpoint file")
	}
}

// TestFarmSweepEndToEnd: Options.FarmURL dispatches the sweep through a
// real coordinator + worker pair and produces results bit-identical to
// the in-process sweep, persisted to the local checkpoint file too.
func TestFarmSweepEndToEnd(t *testing.T) {
	apps := []string{"PVC", "SCP"}
	designs := []caba.Design{caba.Base, caba.CABABDI}

	// In-process reference.
	ref := Options{Scale: 0.02, Seed: 11, Out: io.Discard}
	refRes, err := ref.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	c, err := farm.NewCoordinator(farm.CoordinatorConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		farm.NewWorker(srv.URL, farm.WorkerConfig{
			Name: "e2e", PollInterval: 10 * time.Millisecond, ExitWhenDrained: true,
		}).Run(ctx)
	}()

	ckpt := t.TempDir() + "/farm-runs.ckpt"
	o := Options{Scale: 0.02, Seed: 11, Out: io.Discard, FarmURL: srv.URL, Checkpoint: ckpt}
	res, err := o.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("farm sweep: %v", err)
	}
	<-workerDone

	if len(res) != len(refRes) {
		t.Fatalf("farm sweep returned %d cells, reference %d", len(res), len(refRes))
	}
	for key, want := range refRes {
		got := res[key]
		if got == nil {
			t.Errorf("%s: missing from farm sweep", key)
			continue
		}
		// Bit-identical: JSON round-trips Go floats exactly, so byte
		// equality of the marshalled results is value equality.
		wantRaw, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotRaw, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotRaw) != string(wantRaw) {
			t.Errorf("%s: farm result differs from in-process run", key)
		}
	}

	// The local checkpoint captured the farm results: a follow-up sweep
	// is a pure cache read with no farm traffic at all.
	o2 := Options{Scale: 0.02, Seed: 11, Out: io.Discard, FarmURL: "http://127.0.0.1:1", Checkpoint: ckpt}
	res2, err := o2.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("checkpointed farm sweep: %v", err)
	}
	if len(res2) != len(refRes) {
		t.Fatalf("checkpoint resume = %d cells, want %d", len(res2), len(refRes))
	}
}

// TestFarmClient429Retry: a submission that trips the coordinator's
// admission control (queue cap 1, two cells) is not an error — the
// client tells the user the farm is busy, waits out the Retry-After
// hint, and resubmits the identical request until everything is
// admitted; content-address idempotence makes the replay safe. The
// sweep still ends complete and correct.
func TestFarmClient429Retry(t *testing.T) {
	c, err := farm.NewCoordinator(farm.CoordinatorConfig{
		Dir: t.TempDir(), MaxQueue: 1, LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// No ExitWhenDrained here: the queue drains between the 429 and the
	// client's resubmission (that is the point of the test), and the
	// worker must still be around for the second cell.
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		farm.NewWorker(srv.URL, farm.WorkerConfig{
			Name: "c429", PollInterval: 5 * time.Millisecond,
		}).Run(ctx)
	}()

	var buf strings.Builder
	o := Options{Scale: 0.02, Seed: 11, Out: &buf, FarmURL: srv.URL}
	res, err := o.sweep([]string{"PVC", "SCP"}, []caba.Design{caba.Base}, nil)
	cancel()
	if err != nil {
		t.Fatalf("farm sweep through admission control: %v\noutput:\n%s", err, buf.String())
	}
	<-workerDone
	if len(res) != 2 {
		t.Fatalf("results = %d cells, want 2", len(res))
	}
	if !strings.Contains(buf.String(), "coordinator is busy") {
		t.Errorf("client never reported the 429 backoff; output:\n%s", buf.String())
	}
}

// TestFarmClientConnRefusedRecovery: a connection-refused transport
// error means the coordinator is down or restarting — the client says
// so explicitly (it is a different situation from a 5xx) and keeps
// retrying on its doubling schedule until the listener comes back.
func TestFarmClientConnRefusedRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now: connection refused

	// Bring a server up on the same address shortly after the client's
	// first refused attempts.
	serverUp := make(chan error, 1)
	hsrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	})}
	defer hsrv.Close()
	go func() {
		time.Sleep(400 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			serverUp <- err
			return
		}
		serverUp <- nil
		hsrv.Serve(ln2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var buf strings.Builder
	o := Options{Out: &buf}
	if err := o.farmCall(ctx, http.MethodGet, "http://"+addr+"/status", nil, nil); err != nil {
		if lerr := <-serverUp; lerr != nil {
			t.Skipf("could not re-bind reserved port %s: %v", addr, lerr)
		}
		t.Fatalf("farmCall never recovered: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "refused connection") {
		t.Errorf("client did not name the refused connection; output:\n%s", buf.String())
	}
}

// TestFarmClientDegradedWarning: when responses carry a non-ok
// X-Farm-Health header the client warns the user exactly once per
// sweep, not once per poll.
func TestFarmClientDegradedWarning(t *testing.T) {
	c, err := farm.NewCoordinator(farm.CoordinatorConfig{Dir: t.TempDir(), MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		farm.NewWorker(srv.URL, farm.WorkerConfig{
			Name: "cdeg", PollInterval: 5 * time.Millisecond, ExitWhenDrained: true,
		}).Run(ctx)
	}()

	// One cell against a cap-1 queue: the moment it is admitted the
	// queue is saturated, so the client's status polls see a non-ok
	// health header until the worker reports the result.
	var buf strings.Builder
	o := Options{Scale: 0.02, Seed: 11, Out: &buf, FarmURL: srv.URL}
	res, err := o.sweep([]string{"PVC"}, []caba.Design{caba.CABABDI}, nil)
	if err != nil {
		t.Fatalf("farm sweep: %v\noutput:\n%s", err, buf.String())
	}
	<-workerDone
	if len(res) != 1 {
		t.Fatalf("results = %d cells, want 1", len(res))
	}
	if n := strings.Count(buf.String(), "warning: coordinator reports"); n != 1 {
		t.Errorf("degraded warning printed %d times, want exactly once; output:\n%s", n, buf.String())
	}
}
