package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	caba "github.com/caba-sim/caba"
)

func TestSuites(t *testing.T) {
	if got := len(Fig1Suite()); got != 27 {
		t.Errorf("Fig1 suite = %d apps, want 27", got)
	}
	if got := len(CompressSuite()); got != 20 {
		t.Errorf("compression suite = %d apps, want 20", got)
	}
}

func TestAggregates(t *testing.T) {
	if g := geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean = %v, want 2", g)
	}
	if geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
}

func TestFig2NoSimulation(t *testing.T) {
	var buf bytes.Buffer
	o := Defaults(&buf)
	res, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 27 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.Average <= 0 || res.Average >= 1 {
		t.Errorf("average unallocated = %v", res.Average)
	}
	if !strings.Contains(buf.String(), "paper: 24%") {
		t.Error("rendered output missing the paper reference")
	}
}

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table1(Defaults(&buf))
	for _, want := range []string{"15 SMs", "GDDR5", "tCL=12", "48 warps/SM"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Options{Scale: 0.01, Seed: 1, Out: io.Discard}
	res, err := o.sweep([]string{"SCP"}, []caba.Design{caba.Base, caba.CABABDI}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for k, r := range res {
		if r.Cycles == 0 {
			t.Errorf("%v: empty result", k)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Defaults(nil)
	if o.out() == nil {
		t.Error("nil Out must map to a sink")
	}
	if o.workers() < 1 {
		t.Error("workers must be positive")
	}
	cfg := o.cfg()
	if cfg.Scale != o.Scale {
		t.Error("cfg must carry the scale")
	}
}
