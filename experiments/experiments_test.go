package experiments

import (
	"bytes"
	"context"
	"io"
	"math"
	"strings"
	"testing"

	caba "github.com/caba-sim/caba"
)

func TestSuites(t *testing.T) {
	if got := len(Fig1Suite()); got != 27 {
		t.Errorf("Fig1 suite = %d apps, want 27", got)
	}
	if got := len(CompressSuite()); got != 20 {
		t.Errorf("compression suite = %d apps, want 20", got)
	}
}

func TestAggregates(t *testing.T) {
	if g := geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean = %v, want 2", g)
	}
	if geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
}

func TestFig2NoSimulation(t *testing.T) {
	var buf bytes.Buffer
	o := Defaults(&buf)
	res, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 27 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.Average <= 0 || res.Average >= 1 {
		t.Errorf("average unallocated = %v", res.Average)
	}
	if !strings.Contains(buf.String(), "paper: 24%") {
		t.Error("rendered output missing the paper reference")
	}
}

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table1(Defaults(&buf))
	for _, want := range []string{"15 SMs", "GDDR5", "tCL=12", "48 warps/SM"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := Options{Scale: 0.01, Seed: 1, Out: io.Discard}
	res, err := o.sweep([]string{"SCP"}, []caba.Design{caba.Base, caba.CABABDI}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for k, r := range res {
		if r.Cycles == 0 {
			t.Errorf("%v: empty result", k)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Defaults(nil)
	if o.out() == nil {
		t.Error("nil Out must map to a sink")
	}
	if o.workers() < 1 {
		t.Error("workers must be positive")
	}
	cfg := o.cfg()
	if cfg.Scale != o.Scale {
		t.Error("cfg must carry the scale")
	}
}

// TestFig14Hooked drives the use-case figure through a runHook that
// fabricates results, pinning the figure's shape: a speedup cell per
// (non-Base design x app), activity counters from the per-design stats,
// and a stall-shift entry per showcase app.
func TestFig14Hooked(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Scale: 0.01, Seed: 1, Out: &buf}
	o.runHook = func(_ context.Context, _ caba.Config, design caba.Design, app string, _ int64) (*caba.Result, error) {
		ipc := 100.0
		st := &caba.Metrics{}
		switch design.Name {
		case caba.CABAPrefetch.Name:
			ipc = 110
			st.PrefetchTriggers, st.PrefetchUseful, st.PrefetchThrottled = 7, 5, 2
		case caba.CABAMemo.Name:
			ipc = 95
			st.MemoHits, st.MemoMisses, st.MemoUpdates = 11, 13, 3
		}
		return &caba.Result{App: app, Design: design.Name, Cycles: 1000, IPC: ipc, Stats: st}, nil
	}
	res, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	apps := UseCaseSuite()
	for _, d := range []string{caba.CABAPrefetch.Name, caba.CABAMemo.Name, caba.CABACombined.Name} {
		if got := len(res.Speedup[d]); got != len(apps) {
			t.Errorf("%s: %d speedup cells, want %d", d, got, len(apps))
		}
	}
	if sp := res.Speedup[caba.CABAPrefetch.Name]["STRD"]; math.Abs(sp-1.1) > 1e-9 {
		t.Errorf("prefetch speedup = %v, want 1.1", sp)
	}
	if sp := res.Speedup[caba.CABAMemo.Name]["TBL"]; math.Abs(sp-0.95) > 1e-9 {
		t.Errorf("memo speedup = %v, want 0.95 (losses must be reported, not clipped)", sp)
	}
	if res.Prefetch["STRD"] != [3]uint64{7, 5, 2} {
		t.Errorf("prefetch activity = %v", res.Prefetch["STRD"])
	}
	if res.Memo["TBL"] != [3]uint64{11, 13, 3} {
		t.Errorf("memo activity = %v", res.Memo["TBL"])
	}
	for _, app := range []string{"STRD", "TBL"} {
		if _, ok := res.StallShift[app]; !ok {
			t.Errorf("no stall-shift entry for showcase %s", app)
		}
	}
	if out := buf.String(); !strings.Contains(out, "Figure 14") || !strings.Contains(out, "stall shift") {
		t.Errorf("rendered output incomplete:\n%s", out)
	}
}
