package experiments

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
)

// TestSweepCellSnapshotResume drives the full mid-run resume path with
// real simulations: a sweep whose only cell is interrupted by a tiny
// deadline leaves a mid-run snapshot under <Checkpoint>.d/; rerunning the
// sweep resumes that cell from the snapshot and converges to the
// bit-identical result of a never-interrupted sweep, then removes the
// snapshot.
func TestSweepCellSnapshotResume(t *testing.T) {
	apps := []string{"PVC"}
	designs := []caba.Design{caba.CABABDI}
	key := runKey{"PVC", caba.CABABDI.Name, 1}

	clean := Options{Scale: 0.02, Seed: 3, Parallel: 1, Out: io.Discard}
	want, err := clean.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}

	ckPath := filepath.Join(t.TempDir(), "sweep.ckpt")
	first := Options{Scale: 0.02, Seed: 3, Parallel: 1, Out: io.Discard,
		Checkpoint: ckPath, CheckpointEvery: 500,
		RunTimeout: 20 * time.Millisecond}
	res, err := first.sweep(apps, designs, nil)
	interrupted := err != nil
	if interrupted {
		// Expected: the deadline interrupted the cell mid-run. Its
		// snapshot (if one was written before the interrupt) now waits
		// under the sweep checkpoint directory.
		t.Logf("first pass interrupted as intended: %v", err)
		if path := first.cellCheckpointPath(key); path != "" {
			if _, serr := os.Stat(path); serr == nil {
				t.Logf("mid-run snapshot present at %s", path)
			} else {
				t.Logf("interrupt landed before the first snapshot; resuming from scratch")
			}
		}
	} else {
		t.Logf("first pass outran the deadline (%d cells)", len(res))
	}

	second := Options{Scale: 0.02, Seed: 3, Parallel: 1, Out: io.Discard,
		Checkpoint: ckPath, CheckpointEvery: 500}
	res, err = second.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("resume sweep: %v", err)
	}
	got := res[key]
	if got == nil {
		t.Fatal("resumed sweep is missing the cell")
	}
	ref := want[key]
	if got.Cycles != ref.Cycles || got.IPC != ref.IPC {
		t.Errorf("resumed cell: %d cycles IPC %v, clean cell: %d cycles IPC %v",
			got.Cycles, got.IPC, ref.Cycles, ref.IPC)
	}
	// Full statistics equality only applies on the genuine resume path;
	// when the first pass finished, the cell comes back through the JSONL
	// cache instead of a live run.
	if interrupted && !reflect.DeepEqual(got.Stats, ref.Stats) {
		t.Error("resumed cell statistics differ from the clean sweep")
	}

	// The successful cell must have cleaned up its mid-run snapshot.
	if path := second.cellCheckpointPath(key); path != "" {
		if _, err := os.Stat(path); err == nil {
			t.Errorf("cell snapshot %s not removed after success", path)
		}
	}
}
