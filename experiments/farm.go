package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/farm"
)

// farmSweep dispatches the sweep's remaining cells to the farm
// coordinator at o.FarmURL and collects the outcomes into results. The
// coordinator owns execution policy (leases, retries, the wedge
// fail-fast, checkpoint resume); this client only submits, polls and
// merges. Degradation mirrors the in-process sweep: completed cells are
// returned even when others failed, failures come back as one joined
// error naming each broken cell, and a cancelled Context stops the wait
// and returns whatever has finished with the cancellation joined in.
func (o *Options) farmSweep(apps []string, designs []caba.Design, bws []float64, done map[runKey]bool, results map[runKey]*caba.Result, ck *checkpoint) error {
	ctx := o.ctx()
	base := strings.TrimRight(o.FarmURL, "/")

	// Build one farm cell per missing grid cell. The farm's content
	// address covers everything result-determining, so keys computed here
	// and by the coordinator agree.
	var cells []farm.Cell
	byKey := make(map[string]runKey)
	for _, a := range apps {
		for _, d := range designs {
			for _, bw := range append([]float64(nil), bws...) {
				key := runKey{a, d.Name, bw}
				if done[key] {
					continue
				}
				cfg := o.cfg()
				cfg.BWScale = bw
				cell := farm.Cell{App: a, Seed: o.Seed, Config: cfg, Design: d}
				ck64, err := cell.Key()
				if err != nil {
					return fmt.Errorf("experiments: farm cell %s: %w", key, err)
				}
				cells = append(cells, cell)
				byKey[farm.KeyString(ck64)] = key
			}
		}
	}
	if len(cells) == 0 {
		return nil
	}

	var sw farm.SweepResponse
	if err := o.farmCall(ctx, http.MethodPost, base+"/sweep", &farm.SweepRequest{Cells: cells}, &sw); err != nil {
		return fmt.Errorf("experiments: farm submit: %w", err)
	}
	fmt.Fprintf(o.out(), "farm sweep: %d submitted (%d new, %d cached, %d already known) to %s\n",
		len(cells), sw.Accepted, sw.CacheHits, sw.Known, base)

	// Poll with server-side long-polling until the sweep drains or the
	// caller cancels. Results are fetched only on the final call — status
	// polls stay cheap while cells are in flight.
	var errs []error
	for {
		var st farm.StatusResponse
		err := o.farmCall(ctx, http.MethodGet, base+"/status?results=0&wait_ms=2000", nil, &st)
		if err != nil {
			if ctx.Err() != nil {
				errs = append(errs, fmt.Errorf("experiments: farm sweep cancelled: %w", context.Cause(ctx)))
				break
			}
			return fmt.Errorf("experiments: farm status: %w", err)
		}
		if st.Drained {
			break
		}
		if ctx.Err() != nil {
			errs = append(errs, fmt.Errorf("experiments: farm sweep cancelled: %w", context.Cause(ctx)))
			break
		}
	}

	// Final collection: whatever is terminal at this point (everything,
	// unless cancelled). A short context-free timeout keeps the last
	// fetch possible even after cancellation — partial results are the
	// whole point of degrading gracefully.
	fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var st farm.StatusResponse
	if err := o.farmCall(fetchCtx, http.MethodGet, base+"/status", nil, &st); err != nil {
		errs = append(errs, fmt.Errorf("experiments: farm collect: %w", err))
		return errors.Join(errs...)
	}
	for keyHex, res := range st.Results {
		key, ok := byKey[keyHex]
		if !ok || res == nil {
			continue // a cell from some other client's sweep
		}
		results[key] = res
		if werr := ck.append(key, res); werr != nil {
			errs = append(errs, werr)
		}
	}
	for _, f := range st.Failures {
		key, ok := byKey[f.Key]
		if !ok {
			continue
		}
		kind := "transient"
		if f.Wedge {
			kind = "deterministic wedge"
		}
		errs = append(errs, fmt.Errorf("%s: farm cell failed (%s after %d attempt(s)): %s", key, kind, f.Attempts, f.Error))
	}
	return errors.Join(errs...)
}

// farmCall performs one JSON request against the coordinator.
func (o *Options) farmCall(ctx context.Context, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = strings.NewReader(string(raw))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
