package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/farm"
)

// farmSweep dispatches the sweep's remaining cells to the farm
// coordinator at o.FarmURL and collects the outcomes into results. The
// coordinator owns execution policy (leases, retries, the wedge
// fail-fast, checkpoint resume); this client only submits, polls and
// merges. Degradation mirrors the in-process sweep: completed cells are
// returned even when others failed, failures come back as one joined
// error naming each broken cell, and a cancelled Context stops the wait
// and returns whatever has finished with the cancellation joined in.
func (o *Options) farmSweep(apps []string, designs []caba.Design, bws []float64, done map[runKey]bool, results map[runKey]*caba.Result, ck *checkpoint) error {
	ctx := o.ctx()
	base := strings.TrimRight(o.FarmURL, "/")

	// Build one farm cell per missing grid cell. The farm's content
	// address covers everything result-determining, so keys computed here
	// and by the coordinator agree.
	var cells []farm.Cell
	byKey := make(map[string]runKey)
	for _, a := range apps {
		for _, d := range designs {
			for _, bw := range append([]float64(nil), bws...) {
				key := runKey{a, d.Name, bw}
				if done[key] {
					continue
				}
				cfg := o.cfg()
				cfg.BWScale = bw
				cell := farm.Cell{App: a, Seed: o.Seed, Config: cfg, Design: d}
				ck64, err := cell.Key()
				if err != nil {
					return fmt.Errorf("experiments: farm cell %s: %w", key, err)
				}
				cells = append(cells, cell)
				byKey[farm.KeyString(ck64)] = key
			}
		}
	}
	if len(cells) == 0 {
		return nil
	}

	var sw farm.SweepResponse
	if err := o.farmCall(ctx, http.MethodPost, base+"/sweep", &farm.SweepRequest{Cells: cells, Client: o.farmClientName()}, &sw); err != nil {
		return fmt.Errorf("experiments: farm submit: %w", err)
	}
	fmt.Fprintf(o.out(), "farm sweep: %d submitted (%d new, %d cached, %d already known) to %s\n",
		len(cells), sw.Accepted, sw.CacheHits, sw.Known, base)

	// Poll with server-side long-polling until the sweep drains or the
	// caller cancels. Results are fetched only on the final call — status
	// polls stay cheap while cells are in flight.
	var errs []error
	for {
		var st farm.StatusResponse
		err := o.farmCall(ctx, http.MethodGet, base+"/status?results=0&wait_ms=2000", nil, &st)
		if err != nil {
			if ctx.Err() != nil {
				errs = append(errs, fmt.Errorf("experiments: farm sweep cancelled: %w", context.Cause(ctx)))
				break
			}
			return fmt.Errorf("experiments: farm status: %w", err)
		}
		if st.Drained {
			break
		}
		if ctx.Err() != nil {
			errs = append(errs, fmt.Errorf("experiments: farm sweep cancelled: %w", context.Cause(ctx)))
			break
		}
		if o.farmShed {
			// The coordinator shed our long-poll to protect itself under
			// load: the poll came back immediately, so pace the next one
			// instead of turning the shedding into a tight request loop.
			sleepJitter(ctx, time.Second)
		}
	}

	// Final collection: whatever is terminal at this point (everything,
	// unless cancelled). A short context-free timeout keeps the last
	// fetch possible even after cancellation — partial results are the
	// whole point of degrading gracefully.
	fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var st farm.StatusResponse
	if err := o.farmCall(fetchCtx, http.MethodGet, base+"/status", nil, &st); err != nil {
		errs = append(errs, fmt.Errorf("experiments: farm collect: %w", err))
		return errors.Join(errs...)
	}
	for keyHex, res := range st.Results {
		key, ok := byKey[keyHex]
		if !ok || res == nil {
			continue // a cell from some other client's sweep
		}
		results[key] = res
		if werr := ck.append(key, res); werr != nil {
			errs = append(errs, werr)
		}
	}
	for _, f := range st.Failures {
		key, ok := byKey[f.Key]
		if !ok {
			continue
		}
		kind := "transient"
		switch {
		case f.Poison:
			kind = "poison-quarantined"
		case f.Wedge:
			kind = "deterministic wedge"
		}
		errs = append(errs, fmt.Errorf("%s: farm cell failed (%s after %d attempt(s)): %s", key, kind, f.Attempts, f.Error))
	}
	return errors.Join(errs...)
}

// farmClientName identifies this client to the coordinator's admission
// control (per-client quotas, queue attribution).
func (o *Options) farmClientName() string {
	host, _ := os.Hostname()
	if host == "" {
		host = "experiments"
	}
	return "experiments@" + host
}

// farmCall performs one JSON request against the coordinator, speaking
// its overload protocol. Failures are not all equal:
//
//   - A transport error (connection refused or reset) means the
//     coordinator is down or restarting: retried on a long doubling
//     schedule, capped, while the context lives — a restarted farmd
//     replays its journal and carries on, so patience wins.
//   - 429 (admission control) and 503 (draining/saturated) mean the
//     coordinator is alive but protecting itself: retried after its
//     Retry-After hint plus jitter, indefinitely under the context —
//     submission is idempotent by content address, so replaying the
//     identical request is always safe.
//   - Any other 5xx is an internal fault: retried a few times on a short
//     backoff, then surfaced.
//   - 4xx is the caller's bug: surfaced immediately.
//
// A degraded/saturated X-Farm-Health response header is surfaced to the
// user once per sweep as a warning.
func (o *Options) farmCall(ctx context.Context, method, url string, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		if raw, err = json.Marshal(in); err != nil {
			return err
		}
	}
	connWait := 500 * time.Millisecond
	connTries, serverTries := 0, 0
	for {
		var body io.Reader
		if raw != nil {
			body = strings.NewReader(string(raw))
		}
		req, err := http.NewRequestWithContext(ctx, method, url, body)
		if err != nil {
			return err
		}
		if raw != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			if connTries++; connTries > 20 {
				return fmt.Errorf("experiments: coordinator unreachable after %d attempts: %w", connTries, err)
			}
			if errors.Is(err, syscall.ECONNREFUSED) {
				fmt.Fprintf(o.out(), "farm: coordinator refused connection (restarting?); retrying in %s\n", connWait)
			}
			if !sleepJitter(ctx, connWait) {
				return err
			}
			if connWait *= 2; connWait > 10*time.Second {
				connWait = 10 * time.Second
			}
			continue
		}
		connTries, connWait = 0, 500*time.Millisecond
		if h := resp.Header.Get("X-Farm-Health"); h != "" && h != "ok" && !o.farmDegradedWarned {
			o.farmDegradedWarned = true
			fmt.Fprintf(o.out(), "farm: warning: coordinator reports %q — expect slower admission and shed long-polls\n", h)
		}
		o.farmShed = resp.Header.Get("X-Farm-Shed") != ""
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			wait := retryAfterHint(resp, 2*time.Second)
			fmt.Fprintf(o.out(), "farm: coordinator is busy (%s: %s); retrying in ~%s\n",
				resp.Status, strings.TrimSpace(string(msg)), wait)
			if !sleepJitter(ctx, wait) {
				return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
			}
			continue
		case resp.StatusCode >= 500:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if serverTries++; serverTries > 4 {
				return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
			}
			if !sleepJitter(ctx, 250*time.Millisecond<<serverTries) {
				return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
			}
			continue
		case resp.StatusCode >= 300:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return err
	}
}

// retryAfterHint reads a Retry-After header in seconds, falling back to
// def when absent or malformed.
func retryAfterHint(resp *http.Response, def time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}

// sleepJitter sleeps d scaled by a random factor in [0.5, 1.5) — so a
// fleet of clients told "Retry-After: 2" does not re-land in lockstep —
// unless ctx ends first; it reports whether the sleep completed. The
// randomness affects request timing only, never simulated results.
func sleepJitter(ctx context.Context, d time.Duration) bool {
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
