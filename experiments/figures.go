package experiments

import (
	"errors"
	"fmt"
	"sync"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/internal/gpu"
	"github.com/caba-sim/caba/internal/obs"
	"github.com/caba-sim/caba/internal/stats"
	"github.com/caba-sim/caba/internal/workloads"
)

// --- Figure 1: issue-cycle breakdown at 1/2x, 1x, 2x bandwidth ---

// Fig1Row is one application's breakdown at one bandwidth point.
type Fig1Row struct {
	App         string
	MemoryBound bool
	BWScale     float64
	// Fractions: Active, ComputeStall, MemoryStall, DataDepStall, Idle.
	Breakdown [stats.NumStallKinds]float64
}

// Fig1Result carries all rows plus the paper's headline aggregate.
type Fig1Result struct {
	Rows []Fig1Row
	// MemDepFraction1x is Memory+DataDep stall share for memory-bound
	// apps at baseline bandwidth (paper: 61%).
	MemDepFraction1x float64
	// MemDepFraction2x is the same at doubled bandwidth (paper: 51%).
	MemDepFraction2x float64
}

// Fig1 reproduces Figure 1. When some grid cells failed, the returned
// error is non-nil but the figure still carries every completed row (the
// broken cells are simply absent).
func Fig1(o Options) (*Fig1Result, error) {
	apps := Fig1Suite()
	bws := []float64{0.5, 1.0, 2.0}
	results, sweepErr := o.sweep(apps, []caba.Design{caba.Base}, bws)
	out := o.out()
	fmt.Fprintf(out, "Figure 1: issue-cycle breakdown (Base design)\n")
	fmt.Fprintf(out, "%-6s %-5s %8s %8s %8s %8s %8s\n", "app", "bw", "active", "comp", "mem", "dep", "idle")
	res := &Fig1Result{}
	var memdep1x, memdep2x []float64
	for _, name := range apps {
		app := workloads.ByName(name)
		for _, bw := range bws {
			r := results[runKey{name, caba.Base.Name, bw}]
			if r == nil {
				continue
			}
			br := breakdownOf(r)
			res.Rows = append(res.Rows, Fig1Row{App: name, MemoryBound: app.MemoryBound, BWScale: bw, Breakdown: br})
			fmt.Fprintf(out, "%-6s %4.1fx %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				name, bw, 100*br[stats.Active], 100*br[stats.ComputeStall],
				100*br[stats.MemoryStall], 100*br[stats.DataDepStall], 100*br[stats.IdleCycle])
			if app.MemoryBound {
				md := br[stats.MemoryStall] + br[stats.DataDepStall]
				if bw == 1.0 {
					memdep1x = append(memdep1x, md)
				}
				if bw == 2.0 {
					memdep2x = append(memdep2x, md)
				}
			}
		}
	}
	res.MemDepFraction1x = mean(memdep1x)
	res.MemDepFraction2x = mean(memdep2x)
	fmt.Fprintf(out, "memory-bound apps: mem+dep stalls %.0f%% at 1x (paper 61%%), %.0f%% at 2x (paper 51%%)\n",
		100*res.MemDepFraction1x, 100*res.MemDepFraction2x)
	return res, sweepErr
}

// --- Figure 2: statically unallocated registers ---

// Fig2Row is one application's register allocation.
type Fig2Row struct {
	App         string
	Unallocated float64
	LimitedBy   string
}

// Fig2Result carries the rows and the average (paper: 24%).
type Fig2Result struct {
	Rows    []Fig2Row
	Average float64
}

// Fig2 reproduces Figure 2. It is a static occupancy analysis — no
// simulation needed (as in the paper).
func Fig2(o Options) (*Fig2Result, error) {
	cfg := o.cfg()
	out := o.out()
	fmt.Fprintf(out, "Figure 2: fraction of statically unallocated registers\n")
	res := &Fig2Result{}
	var fractions []float64
	for _, a := range workloads.Fig1Apps() {
		inst, err := a.Instantiate(&cfg)
		if err != nil {
			return nil, err
		}
		occ := gpu.ComputeOccupancy(&cfg, inst.Kernel, 0)
		res.Rows = append(res.Rows, Fig2Row{App: a.Name, Unallocated: occ.UnallocatedRegs, LimitedBy: occ.LimitedBy})
		fractions = append(fractions, occ.UnallocatedRegs)
		fmt.Fprintf(out, "%-6s %6.1f%%  (limited by %s)\n", a.Name, 100*occ.UnallocatedRegs, occ.LimitedBy)
	}
	res.Average = mean(fractions)
	fmt.Fprintf(out, "average unallocated: %.1f%% (paper: 24%%)\n", 100*res.Average)
	return res, nil
}

// --- Figures 7, 8, 9: the five-design compression study ---

// DesignMetrics aggregates one design across the suite.
type DesignMetrics struct {
	Design      string
	Speedup     map[string]float64 // per app, vs Base
	BWUtil      map[string]float64
	EnergyRel   map[string]float64 // vs Base
	MeanSpeedup float64
	MaxSpeedup  float64
	MeanBWUtil  float64
	MeanEnergy  float64 // relative
}

// StudyResult is the shared Figure 7/8/9 sweep.
type StudyResult struct {
	Designs []*DesignMetrics
	// MDHitRate is the average metadata-cache hit rate under CABA-BDI
	// (Section 4.3.2; paper: ~85%).
	MDHitRate float64
	// DRAMEnergyReduction is CABA-BDI's DRAM energy saving vs Base
	// (paper: 29.5% power reduction).
	DRAMEnergyReduction float64
}

var study789Designs = []caba.Design{
	caba.Base, caba.HWBDIMem, caba.HWBDI, caba.CABABDI, caba.IdealBDI,
}

// studyCache memoizes the expensive five-design sweep so Figures 7, 8, 9
// and the MD-cache table (which all read the same runs) cost one sweep.
var studyCache sync.Map // studyKey -> *StudyResult

type studyKey struct {
	scale float64
	seed  int64
}

// Study789 runs the five-design sweep shared by Figures 7, 8 and 9.
func Study789(o Options) (*StudyResult, error) {
	key := studyKey{o.Scale, o.Seed}
	if v, ok := studyCache.Load(key); ok {
		return v.(*StudyResult), nil
	}
	s, err := study789(o)
	if err == nil {
		studyCache.Store(key, s)
	}
	return s, err
}

func study789(o Options) (*StudyResult, error) {
	apps := CompressSuite()
	results, sweepErr := o.sweep(apps, study789Designs, nil)
	study := &StudyResult{}
	var mdRates, dramSave []float64
	for _, d := range study789Designs {
		m := &DesignMetrics{
			Design:    d.Name,
			Speedup:   map[string]float64{},
			BWUtil:    map[string]float64{},
			EnergyRel: map[string]float64{},
		}
		var sp, bw, en []float64
		for _, app := range apps {
			base := results[runKey{app, caba.Base.Name, 1.0}]
			r := results[runKey{app, d.Name, 1.0}]
			if base == nil || r == nil {
				continue
			}
			speedup := r.IPC / base.IPC
			m.Speedup[app] = speedup
			m.BWUtil[app] = r.BandwidthUtil
			m.EnergyRel[app] = r.EnergyNJ / base.EnergyNJ
			sp = append(sp, speedup)
			bw = append(bw, r.BandwidthUtil)
			en = append(en, r.EnergyNJ/base.EnergyNJ)
			if d.Name == caba.CABABDI.Name {
				if mh := r.MDHitRate; mh > 0 {
					mdRates = append(mdRates, mh)
				}
				dramSave = append(dramSave, 1-r.DRAMEnergyNJ/base.DRAMEnergyNJ)
				if speedup > m.MaxSpeedup {
					m.MaxSpeedup = speedup
				}
			}
			if speedup > m.MaxSpeedup {
				m.MaxSpeedup = speedup
			}
		}
		m.MeanSpeedup = geomean(sp)
		m.MeanBWUtil = mean(bw)
		m.MeanEnergy = mean(en)
		study.Designs = append(study.Designs, m)
	}
	study.MDHitRate = mean(mdRates)
	study.DRAMEnergyReduction = mean(dramSave)
	return study, sweepErr
}

// Metric selects what a study figure reports.
func (s *StudyResult) byName(name string) *DesignMetrics {
	for _, d := range s.Designs {
		if d.Design == name {
			return d
		}
	}
	return nil
}

// CABASpeedup returns CABA-BDI's mean speedup over Base.
func (s *StudyResult) CABASpeedup() float64 { return s.byName(caba.CABABDI.Name).MeanSpeedup }

// IdealSpeedup returns Ideal-BDI's mean speedup over Base.
func (s *StudyResult) IdealSpeedup() float64 { return s.byName(caba.IdealBDI.Name).MeanSpeedup }

// HWMemSpeedup returns HW-BDI-Mem's mean speedup over Base.
func (s *StudyResult) HWMemSpeedup() float64 { return s.byName(caba.HWBDIMem.Name).MeanSpeedup }

// HWSpeedup returns HW-BDI's mean speedup over Base.
func (s *StudyResult) HWSpeedup() float64 { return s.byName(caba.HWBDI.Name).MeanSpeedup }

// BaseBWUtil / CABABWUtil return the Figure 8 aggregates.
func (s *StudyResult) BaseBWUtil() float64 { return s.byName(caba.Base.Name).MeanBWUtil }

// CABABWUtil returns CABA-BDI's mean bandwidth utilization.
func (s *StudyResult) CABABWUtil() float64 { return s.byName(caba.CABABDI.Name).MeanBWUtil }

// CABAEnergy returns CABA-BDI's mean energy relative to Base (Figure 9).
func (s *StudyResult) CABAEnergy() float64 { return s.byName(caba.CABABDI.Name).MeanEnergy }

func renderStudy(o Options, s *StudyResult, metric string) {
	out := o.out()
	apps := CompressSuite()
	fmt.Fprintf(out, "%-6s", "app")
	for _, d := range s.Designs {
		fmt.Fprintf(out, " %12s", d.Design)
	}
	fmt.Fprintln(out)
	for _, app := range apps {
		fmt.Fprintf(out, "%-6s", app)
		for _, d := range s.Designs {
			switch metric {
			case "speedup":
				fmt.Fprintf(out, " %12.2f", d.Speedup[app])
			case "bw":
				fmt.Fprintf(out, " %11.1f%%", 100*d.BWUtil[app])
			case "energy":
				fmt.Fprintf(out, " %12.2f", d.EnergyRel[app])
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%-6s", "MEAN")
	for _, d := range s.Designs {
		switch metric {
		case "speedup":
			fmt.Fprintf(out, " %12.2f", d.MeanSpeedup)
		case "bw":
			fmt.Fprintf(out, " %11.1f%%", 100*d.MeanBWUtil)
		case "energy":
			fmt.Fprintf(out, " %12.2f", d.MeanEnergy)
		}
	}
	fmt.Fprintln(out)
}

// Fig7 reproduces normalized performance (paper: CABA-BDI +41.7%, within
// 2.8% of Ideal, 9.9% over HW-BDI-Mem).
func Fig7(o Options) (*StudyResult, error) {
	s, err := Study789(o)
	if s == nil {
		return nil, err
	}
	fmt.Fprintf(o.out(), "Figure 7: normalized performance (speedup vs Base)\n")
	renderStudy(o, s, "speedup")
	fmt.Fprintf(o.out(), "CABA-BDI mean speedup %.2fx (paper 1.417x), Ideal %.2fx, HW-BDI-Mem %.2fx, HW-BDI %.2fx\n",
		s.CABASpeedup(), s.IdealSpeedup(), s.HWMemSpeedup(), s.HWSpeedup())
	return s, err
}

// Fig8 reproduces memory bandwidth utilization (paper: 53.6% -> 35.6%).
func Fig8(o Options) (*StudyResult, error) {
	s, err := Study789(o)
	if s == nil {
		return nil, err
	}
	fmt.Fprintf(o.out(), "Figure 8: DRAM bandwidth utilization\n")
	renderStudy(o, s, "bw")
	fmt.Fprintf(o.out(), "Base %.1f%% -> CABA-BDI %.1f%% (paper: 53.6%% -> 35.6%%); CABA MD-cache hit rate %.0f%% (paper ~85%%)\n",
		100*s.BaseBWUtil(), 100*s.CABABWUtil(), 100*s.MDHitRate)
	return s, err
}

// Fig9 reproduces normalized energy (paper: CABA-BDI -22.2% vs Base,
// DRAM power -29.5%).
func Fig9(o Options) (*StudyResult, error) {
	s, err := Study789(o)
	if s == nil {
		return nil, err
	}
	fmt.Fprintf(o.out(), "Figure 9: normalized energy (vs Base)\n")
	renderStudy(o, s, "energy")
	fmt.Fprintf(o.out(), "CABA-BDI energy %.2fx of Base (paper 0.78x); DRAM energy -%.0f%% (paper -29.5%%)\n",
		s.CABAEnergy(), 100*s.DRAMEnergyReduction)
	return s, err
}

// --- Figures 10 & 11: algorithm comparison ---

// AlgoResult carries per-algorithm speedups and compression ratios.
type AlgoResult struct {
	// Speedup[designName][app], vs Base.
	Speedup map[string]map[string]float64
	// Ratio[designName][app]: measured DRAM-burst compression ratio.
	Ratio map[string]map[string]float64
	// Mean per design.
	MeanSpeedup map[string]float64
	MeanRatio   map[string]float64
}

var algoDesigns = []caba.Design{caba.CABAFPC, caba.CABABDI, caba.CABACPack, caba.CABABest}

// Fig10and11 runs the algorithm sweep once for both figures.
func Fig10and11(o Options) (*AlgoResult, error) {
	apps := CompressSuite()
	designs := append([]caba.Design{caba.Base}, algoDesigns...)
	results, sweepErr := o.sweep(apps, designs, nil)
	res := &AlgoResult{
		Speedup:     map[string]map[string]float64{},
		Ratio:       map[string]map[string]float64{},
		MeanSpeedup: map[string]float64{},
		MeanRatio:   map[string]float64{},
	}
	for _, d := range algoDesigns {
		res.Speedup[d.Name] = map[string]float64{}
		res.Ratio[d.Name] = map[string]float64{}
		var sp, ra []float64
		for _, app := range apps {
			base := results[runKey{app, caba.Base.Name, 1.0}]
			r := results[runKey{app, d.Name, 1.0}]
			if base == nil || r == nil {
				continue
			}
			res.Speedup[d.Name][app] = r.IPC / base.IPC
			res.Ratio[d.Name][app] = r.CompressionRatio
			sp = append(sp, r.IPC/base.IPC)
			ra = append(ra, r.CompressionRatio)
		}
		res.MeanSpeedup[d.Name] = geomean(sp)
		res.MeanRatio[d.Name] = mean(ra)
	}
	out := o.out()
	fmt.Fprintf(out, "Figure 10: speedup by compression algorithm / Figure 11: compression ratio\n")
	fmt.Fprintf(out, "%-6s", "app")
	for _, d := range algoDesigns {
		fmt.Fprintf(out, " %14s", d.Name)
	}
	fmt.Fprintln(out)
	for _, app := range apps {
		fmt.Fprintf(out, "%-6s", app)
		for _, d := range algoDesigns {
			fmt.Fprintf(out, "  %5.2fx/%5.2fr", res.Speedup[d.Name][app], res.Ratio[d.Name][app])
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "means: FPC %.2fx (paper 1.207x), BDI %.2fx (paper 1.417x), C-Pack %.2fx (paper 1.352x), Best %.2fx\n",
		res.MeanSpeedup[caba.CABAFPC.Name], res.MeanSpeedup[caba.CABABDI.Name],
		res.MeanSpeedup[caba.CABACPack.Name], res.MeanSpeedup[caba.CABABest.Name])
	return res, sweepErr
}

// --- Figure 12: bandwidth sensitivity ---

// Fig12Result carries mean speedups normalized to 1x Base.
type Fig12Result struct {
	// Mean[designName][bw] vs Base@1x.
	Mean map[string]map[float64]float64
}

// Fig12 reproduces the bandwidth sensitivity study (paper: CABA at 1x ~
// Base at 2x).
func Fig12(o Options) (*Fig12Result, error) {
	apps := CompressSuite()
	bws := []float64{0.5, 1.0, 2.0}
	results, sweepErr := o.sweep(apps, []caba.Design{caba.Base, caba.CABABDI}, bws)
	res := &Fig12Result{Mean: map[string]map[float64]float64{
		caba.Base.Name:    {},
		caba.CABABDI.Name: {},
	}}
	out := o.out()
	fmt.Fprintf(out, "Figure 12: sensitivity to peak memory bandwidth (mean speedup vs 1x Base)\n")
	for _, d := range []caba.Design{caba.Base, caba.CABABDI} {
		for _, bw := range bws {
			var sp []float64
			for _, app := range apps {
				ref := results[runKey{app, caba.Base.Name, 1.0}]
				r := results[runKey{app, d.Name, bw}]
				if ref == nil || r == nil {
					continue
				}
				sp = append(sp, r.IPC/ref.IPC)
			}
			res.Mean[d.Name][bw] = geomean(sp)
			fmt.Fprintf(out, "%4.1fx-%-9s %.2f\n", bw, d.Name, res.Mean[d.Name][bw])
		}
	}
	return res, sweepErr
}

// --- Figure 13: cache compression ---

// Fig13Result carries per-design speedups vs CABA-BDI (bandwidth-only).
type Fig13Result struct {
	Speedup     map[string]map[string]float64 // design -> app -> vs plain CABA-BDI
	MeanSpeedup map[string]float64
}

// Fig13 reproduces the selective cache-compression study.
func Fig13(o Options) (*Fig13Result, error) {
	apps := CompressSuite()
	designs := []caba.Design{
		caba.CABABDI,
		caba.CacheCompressed("L1", 2), caba.CacheCompressed("L1", 4),
		caba.CacheCompressed("L2", 2), caba.CacheCompressed("L2", 4),
	}
	results, sweepErr := o.sweep(apps, designs, nil)
	res := &Fig13Result{Speedup: map[string]map[string]float64{}, MeanSpeedup: map[string]float64{}}
	out := o.out()
	fmt.Fprintf(out, "Figure 13: cache compression with CABA (speedup vs CABA-BDI)\n")
	fmt.Fprintf(out, "%-6s", "app")
	for _, d := range designs[1:] {
		fmt.Fprintf(out, " %12s", d.Name)
	}
	fmt.Fprintln(out)
	for _, d := range designs[1:] {
		res.Speedup[d.Name] = map[string]float64{}
	}
	for _, app := range apps {
		ref := results[runKey{app, caba.CABABDI.Name, 1.0}]
		fmt.Fprintf(out, "%-6s", app)
		for _, d := range designs[1:] {
			r := results[runKey{app, d.Name, 1.0}]
			if ref == nil || r == nil {
				fmt.Fprintf(out, " %12s", "-")
				continue
			}
			sp := r.IPC / ref.IPC
			res.Speedup[d.Name][app] = sp
			fmt.Fprintf(out, " %12.2f", sp)
		}
		fmt.Fprintln(out)
	}
	for _, d := range designs[1:] {
		var sp []float64
		for _, app := range apps {
			if v, ok := res.Speedup[d.Name][app]; ok {
				sp = append(sp, v)
			}
		}
		res.MeanSpeedup[d.Name] = geomean(sp)
	}
	fmt.Fprintf(out, "means:")
	for _, d := range designs[1:] {
		fmt.Fprintf(out, " %s %.2f", d.Name, res.MeanSpeedup[d.Name])
	}
	fmt.Fprintln(out)
	return res, sweepErr
}

// --- Figure 14: assist-warp use cases beyond compression (Section 7) ---

// Fig14Result carries the use-case study: per-app speedups of the
// prefetch, memoization and combined designs over Base, the use-case
// activity counters, and the stall-attribution shift that explains each
// showcase result.
type Fig14Result struct {
	// Speedup: design name -> app -> IPC relative to Base. Includes the
	// honest losses — apps where a use case fires without paying off.
	Speedup map[string]map[string]float64
	// Prefetch activity per app under CABA-Prefetch:
	// [triggers, useful fills, throttled].
	Prefetch map[string][3]uint64
	// Memo activity per app under CABA-Memo: [hits, misses, updates].
	Memo map[string][3]uint64
	// StallShift: app -> stall cause name -> (favorable design − Base)
	// unissued-slot delta. Negative means the use case removed that
	// stall; the new causes (pf-mshr, memo-wait) show where its own
	// machinery charges time.
	StallShift map[string]map[string]int64
}

// UseCaseSuite is the Figure 14 application set: one app built to favor
// each use case (STRD for prefetching, TBL for memoization) plus two
// paper apps (PVC, RAY) as controls where the mechanisms fire — or
// throttle — without a favorable pattern.
func UseCaseSuite() []string { return []string{"STRD", "TBL", "PVC", "RAY"} }

// fig14Showcases pairs each showcase app with its favorable design for
// the stall-shift panel.
var fig14Showcases = []struct {
	app    string
	design caba.Design
}{
	{"STRD", caba.CABAPrefetch},
	{"TBL", caba.CABAMemo},
}

// Fig14 runs the use-case comparison. The speedup grid goes through the
// normal sweep (checkpointable, farmable — the design names key the
// cells); the stall-shift panel re-runs the two showcases with stall
// attribution armed, which observes without perturbing simulated state.
func Fig14(o Options) (*Fig14Result, error) {
	apps := UseCaseSuite()
	designs := []caba.Design{caba.Base, caba.CABAPrefetch, caba.CABAMemo, caba.CABACombined}
	results, sweepErr := o.sweep(apps, designs, nil)
	res := &Fig14Result{
		Speedup:    map[string]map[string]float64{},
		Prefetch:   map[string][3]uint64{},
		Memo:       map[string][3]uint64{},
		StallShift: map[string]map[string]int64{},
	}
	out := o.out()
	fmt.Fprintf(out, "Figure 14: assist-warp use cases (speedup vs Base; losses included)\n")
	fmt.Fprintf(out, "%-6s", "app")
	for _, d := range designs[1:] {
		fmt.Fprintf(out, " %14s", d.Name)
	}
	fmt.Fprintln(out)
	for _, d := range designs[1:] {
		res.Speedup[d.Name] = map[string]float64{}
	}
	for _, app := range apps {
		ref := results[runKey{app, caba.Base.Name, 1.0}]
		fmt.Fprintf(out, "%-6s", app)
		for _, d := range designs[1:] {
			r := results[runKey{app, d.Name, 1.0}]
			if ref == nil || r == nil {
				fmt.Fprintf(out, " %14s", "-")
				continue
			}
			sp := r.IPC / ref.IPC
			res.Speedup[d.Name][app] = sp
			fmt.Fprintf(out, " %14.3f", sp)
		}
		fmt.Fprintln(out)
		if r := results[runKey{app, caba.CABAPrefetch.Name, 1.0}]; r != nil && r.Stats != nil {
			res.Prefetch[app] = [3]uint64{r.Stats.PrefetchTriggers, r.Stats.PrefetchUseful, r.Stats.PrefetchThrottled}
		}
		if r := results[runKey{app, caba.CABAMemo.Name, 1.0}]; r != nil && r.Stats != nil {
			res.Memo[app] = [3]uint64{r.Stats.MemoHits, r.Stats.MemoMisses, r.Stats.MemoUpdates}
		}
	}
	fmt.Fprintf(out, "activity: ")
	for _, app := range apps {
		p, m := res.Prefetch[app], res.Memo[app]
		fmt.Fprintf(out, "%s pf(trig=%d useful=%d thr=%d) memo(hit=%d miss=%d upd=%d)  ",
			app, p[0], p[1], p[2], m[0], m[1], m[2])
	}
	fmt.Fprintln(out)

	// Stall-attribution shift for the showcases: where did the removed
	// (or added) stall slots go?
	for _, sc := range fig14Showcases {
		shift, err := o.stallShift(sc.app, sc.design)
		if err != nil {
			sweepErr = errors.Join(sweepErr, err)
			continue
		}
		res.StallShift[sc.app] = shift
		fmt.Fprintf(out, "stall shift %s (%s - Base):", sc.app, sc.design.Name)
		for _, c := range causeOrder() {
			if d := shift[c]; d != 0 {
				fmt.Fprintf(out, " %s%+d", c+":", d)
			}
		}
		fmt.Fprintln(out)
	}
	return res, sweepErr
}

// causeOrder returns every stall-cause label in enum order.
func causeOrder() []string {
	names := make([]string, obs.NumCauses)
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		names[c] = c.String()
	}
	return names
}

// stallShift runs app under Base and design with stall attribution armed
// and returns the per-cause unissued-slot delta (design − Base).
func (o *Options) stallShift(app string, design caba.Design) (map[string]int64, error) {
	run := o.runHook
	if run == nil {
		run = caba.RunContext
	}
	attr := func(d caba.Design) (*caba.StallAttribution, error) {
		cfg := o.cfg()
		cfg.AttributeStalls = true
		r, err := run(o.ctx(), cfg, d, app, o.Seed)
		if err != nil {
			return nil, err
		}
		return r.Stalls, nil
	}
	base, err := attr(caba.Base)
	if err != nil {
		return nil, err
	}
	with, err := attr(design)
	if err != nil {
		return nil, err
	}
	if base == nil || with == nil {
		// A runHook stub without attribution: no shift to report.
		return map[string]int64{}, nil
	}
	bt, wt := base.Totals(), with.Totals()
	shift := map[string]int64{}
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		if d := int64(wt[c]) - int64(bt[c]); d != 0 {
			shift[c.String()] = d
		}
	}
	return shift, nil
}

// Table1 prints the live simulated-system configuration.
func Table1(o Options) {
	cfg := o.cfg()
	out := o.out()
	fmt.Fprintf(out, "Table 1: major parameters of the simulated system\n")
	fmt.Fprintf(out, "System Overview    %d SMs, %d threads/warp, %d memory channels\n", cfg.NumSMs, cfg.WarpSize, cfg.NumChannels)
	fmt.Fprintf(out, "Shader Core        %dMHz, %v scheduler, %d schedulers/SM\n", cfg.CoreClockMHz, cfg.Scheduler, cfg.NumSchedulers)
	fmt.Fprintf(out, "Resources / SM     %d warps/SM, %d registers, %dKB shared memory\n", cfg.MaxWarpsPerSM, cfg.RegFilePerSM, cfg.SharedMemPerSM>>10)
	fmt.Fprintf(out, "L1 Cache           %dKB, %d-way\n", cfg.L1Size>>10, cfg.L1Assoc)
	fmt.Fprintf(out, "L2 Cache           %dKB, %d-way\n", cfg.L2Size>>10, cfg.L2Assoc)
	fmt.Fprintf(out, "Memory Model       %.1fGB/s, %d GDDR5 MCs, FR-FCFS, %d banks/MC\n", cfg.PeakBandwidthGBs(), cfg.NumChannels, cfg.BanksPerChannel)
	t := cfg.Timing
	fmt.Fprintf(out, "GDDR5 Timing       tCL=%d tRP=%d tRC=%d tRAS=%d tRCD=%d tRRD=%d tCCD=%d tWR=%d\n",
		t.TCL, t.TRP, t.TRC, t.TRAS, t.TRCD, t.TRRD, t.TCCD, t.TWR)
}
