package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	caba "github.com/caba-sim/caba"
)

// fakeResult builds a minimal distinguishable Result for hook-driven
// sweep tests.
func fakeResult(app, design string) *caba.Result {
	return &caba.Result{App: app, Design: design, Cycles: 1, IPC: float64(len(app) + len(design))}
}

func TestRunKeyRoundTrip(t *testing.T) {
	for _, k := range []runKey{
		{"PVC", "CABA-BDI", 1},
		{"bfs2", "Base", 0.5},
		{"a", "d@x", 2},
	} {
		got, err := parseRunKey(k.String())
		if err != nil {
			t.Fatalf("parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %q: got %+v, want %+v", k.String(), got, k)
		}
	}
	for _, bad := range []string{"", "noslash@1x", "a/b@x", "a/b@1"} {
		if _, err := parseRunKey(bad); err == nil {
			t.Errorf("parse(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestSweepPartialResults: one broken cell must not wipe out the
// completed cells — sweep returns both the survivors and a joined error
// naming the failure.
func TestSweepPartialResults(t *testing.T) {
	o := Options{Scale: 0.01, Seed: 1, Parallel: 2, Out: io.Discard}
	o.runHook = func(_ context.Context, _ caba.Config, design caba.Design, app string, _ int64) (*caba.Result, error) {
		if app == "PVC" && design.Name == caba.CABABDI.Name {
			return nil, fmt.Errorf("synthetic cell failure")
		}
		return fakeResult(app, design.Name), nil
	}
	res, err := o.sweep([]string{"PVC", "SCP"}, []caba.Design{caba.Base, caba.CABABDI}, nil)
	if err == nil || !strings.Contains(err.Error(), "synthetic cell failure") {
		t.Fatalf("err = %v, want the broken cell's failure", err)
	}
	if !strings.Contains(err.Error(), "PVC/CABA-BDI@1x") {
		t.Errorf("err = %v, want it to name the failed cell", err)
	}
	if len(res) != 3 {
		t.Fatalf("partial results = %d cells, want the 3 that succeeded", len(res))
	}
	if res[runKey{"PVC", caba.CABABDI.Name, 1}] != nil {
		t.Error("failed cell must be absent from results")
	}
}

// TestSweepPanicRecovery: a panicking run is contained to its cell; the
// worker pool survives and the panic surfaces as that cell's error.
func TestSweepPanicRecovery(t *testing.T) {
	o := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard}
	o.runHook = func(_ context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		if app == "PVC" {
			panic("synthetic run panic")
		}
		return fakeResult(app, "Base"), nil
	}
	res, err := o.sweep([]string{"PVC", "SCP", "IIX"}, []caba.Design{caba.Base}, nil)
	if err == nil || !strings.Contains(err.Error(), "synthetic run panic") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d cells, want the 2 non-panicking ones", len(res))
	}
}

// TestSweepTimeout: RunTimeout cancels the per-run context; a run that
// honors it errors out while fast runs complete.
func TestSweepTimeout(t *testing.T) {
	o := Options{Scale: 0.01, Seed: 1, Parallel: 2, Out: io.Discard,
		RunTimeout: 10 * time.Millisecond}
	o.runHook = func(ctx context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		if app == "PVC" {
			<-ctx.Done()
			return nil, fmt.Errorf("run aborted: %w", ctx.Err())
		}
		if _, ok := ctx.Deadline(); !ok {
			return nil, fmt.Errorf("missing deadline")
		}
		return fakeResult(app, "Base"), nil
	}
	res, err := o.sweep([]string{"PVC", "SCP"}, []caba.Design{caba.Base}, nil)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want the fast cell only", len(res))
	}
}

// TestSweepRetry: a transiently failing run succeeds within the retry
// budget and does not surface an error.
func TestSweepRetry(t *testing.T) {
	var calls atomic.Int64
	o := Options{Scale: 0.01, Seed: 1, Parallel: 1, Out: io.Discard,
		Retries: 2, RetryBackoff: time.Millisecond}
	o.runHook = func(_ context.Context, _ caba.Config, _ caba.Design, app string, _ int64) (*caba.Result, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("transient failure %d", calls.Load())
		}
		return fakeResult(app, "Base"), nil
	}
	res, err := o.sweep([]string{"PVC"}, []caba.Design{caba.Base}, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res) != 1 || calls.Load() != 3 {
		t.Fatalf("results = %d, calls = %d; want 1 result after 3 attempts", len(res), calls.Load())
	}
}

// TestSweepCheckpointResume: an interrupted sweep leaves a checkpoint; a
// second invocation re-runs only the missing cells and still returns the
// full grid. A checkpoint from different sweep parameters is rejected.
func TestSweepCheckpointResume(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "sweep.ckpt")
	apps := []string{"PVC", "SCP", "IIX"}
	designs := []caba.Design{caba.Base, caba.CABABDI}

	// First pass: one cell fails, the rest land in the checkpoint.
	o := Options{Scale: 0.01, Seed: 7, Parallel: 1, Out: io.Discard, Checkpoint: ckPath}
	o.runHook = func(_ context.Context, _ caba.Config, design caba.Design, app string, _ int64) (*caba.Result, error) {
		if app == "IIX" && design.Name == caba.CABABDI.Name {
			return nil, fmt.Errorf("first-pass failure")
		}
		return fakeResult(app, design.Name), nil
	}
	res, err := o.sweep(apps, designs, nil)
	if err == nil || len(res) != 5 {
		t.Fatalf("first pass: err=%v results=%d, want 1 failure and 5 cells", err, len(res))
	}

	// Second pass: only the missing cell may run.
	var reruns []string
	o.runHook = func(_ context.Context, _ caba.Config, design caba.Design, app string, _ int64) (*caba.Result, error) {
		reruns = append(reruns, app+"/"+design.Name)
		return fakeResult(app, design.Name), nil
	}
	res, err = o.sweep(apps, designs, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(res) != 6 {
		t.Fatalf("resume results = %d, want the full grid", len(res))
	}
	if len(reruns) != 1 || reruns[0] != "IIX/CABA-BDI" {
		t.Fatalf("resume reran %v, want only the missing cell", reruns)
	}
	for _, app := range apps {
		for _, d := range designs {
			r := res[runKey{app, d.Name, 1}]
			if r == nil || r.App != app || r.Design != d.Name {
				t.Fatalf("cell %s/%s missing or mislabeled after resume: %+v", app, d.Name, r)
			}
		}
	}

	// Mismatched parameters must refuse the stale checkpoint.
	bad := Options{Scale: 0.02, Seed: 7, Out: io.Discard, Checkpoint: ckPath}
	bad.runHook = o.runHook
	if _, err := bad.sweep(apps, designs, nil); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("mismatched checkpoint: err = %v, want rejection", err)
	}
}
