// Command lintdoc enforces godoc coverage: every exported identifier in
// the packages named on the command line must carry a doc comment. It is
// a stdlib-only replacement for the usual external linters (the repo
// builds with no third-party dependencies) and runs as `make lint`.
//
//	go run ./scripts/lintdoc ./internal/obs ./internal/audit
//
// An exported const/var inside a parenthesized group counts as documented
// if the group itself, the individual spec, or a trailing line comment
// documents it (the idiomatic forms for iota enums). Methods are checked
// like functions, whatever their receiver. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifiers without doc comments\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and returns one
// "file:line: name" problem per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Name.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// lintGenDecl checks a const/var/type declaration. The group doc (if any)
// covers every spec in the group; otherwise each exported spec needs its
// own leading or trailing comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Name.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			documented := groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
