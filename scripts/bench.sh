#!/bin/sh
# Regenerates BENCH_sim.json: wall-clock and allocation numbers for the
# simulator hot loop (single-run Sim* benchmarks, fixed 5 iterations for
# comparability) and the event-queue micro-benchmark. Run via `make bench`
# from the repository root.
set -e
cd "$(dirname "$0")/.."
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Preflight: benchmark numbers are only recorded from a tree that vets
# clean, is race-free (the parallel tick engine makes -race load-bearing),
# and whose zero-fault runs are still bit-identical to the recorded golden
# statistics (the fault-injection hooks must cost nothing when disabled).
go vet ./...
go test -race ./...
go test -run 'TestZeroFaultGolden' .
# The maintenance knobs (CheckpointEvery/AuditEvery) default to zero in
# every benchmarked configuration and must add nothing there beyond one
# dead compare per cycle; the restore-equivalence and clean-audit tests
# pin that a run with the knobs on produces statistics DeepEqual to a
# plain run, so the knobs provably do not perturb the machine being timed.
go test -run 'TestSnapshotRestoreEquivalence|TestAuditEveryPassesCleanRun' ./internal/gpu

go test -run '^$' \
  -bench 'BenchmarkSimBasePVC$|BenchmarkSimCABAPVC$|BenchmarkSimBaseSSSP$|BenchmarkSimCABASSSP$|BenchmarkSimHotLoop$' \
  -benchtime 5x -benchmem . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkSimParallelPVC' \
  -benchtime 5x -benchmem . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkQueue$' -benchmem ./internal/timing | tee -a "$tmp"

awk '
BEGIN { print "{"; printf "  \"benchmarks\": [" ; sep="" }
/^Benchmark/ {
  name=$1; sub(/-[0-9]+$/, "", name)
  ns="null"; bytes="null"; allocs="null"
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i-1)
    else if ($i == "B/op") bytes = $(i-1)
    else if ($i == "allocs/op") allocs = $(i-1)
  }
  printf "%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, ns, bytes, allocs
  sep=","
}
END { print "\n  ]"; print "}" }
' "$tmp" > BENCH_sim.json
echo "wrote BENCH_sim.json"
