#!/bin/sh
# Regenerates BENCH_sim.json: wall-clock and allocation numbers for the
# simulator hot loop (Sim* benchmarks at a fixed 5 iterations for
# comparability, minimum over 3 repetitions to estimate the noise floor)
# and the event-queue micro-benchmark. Run via `make bench` from the
# repository root.
set -e
cd "$(dirname "$0")/.."
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Preflight: benchmark numbers are only recorded from a tree that vets
# clean, is race-free (the parallel tick engine makes -race load-bearing),
# and whose zero-fault runs are still bit-identical to the recorded golden
# statistics (the fault-injection hooks must cost nothing when disabled).
go vet ./...
go test -race ./...
go test -run 'TestZeroFaultGolden' .
# The maintenance knobs (CheckpointEvery/AuditEvery) default to zero in
# every benchmarked configuration and must add nothing there beyond one
# dead compare per cycle; the restore-equivalence and clean-audit tests
# pin that a run with the knobs on produces statistics DeepEqual to a
# plain run, so the knobs provably do not perturb the machine being timed.
go test -run 'TestSnapshotRestoreEquivalence|TestAuditEveryPassesCleanRun' ./internal/gpu
# The observability knobs (SampleEvery/MetricsFile/TraceFile/
# AttributeStalls) also default to zero in every benchmarked
# configuration; the obs golden-equivalence test pins that turning them
# on changes no statistic, so off they are inert nil-pointer guards.
go test -run 'TestObsGoldenEquivalence|TestStallAttributionSums' .
# The batched issue engine (BatchIssue, on by default) must be
# bit-identical to the per-cycle decoded engine — the Batch and Decoded
# sentinels below only compare meaningfully as timings of the same
# simulated machine.
go test -run 'TestBatchGoldenEquivalence' .

# Record the previously published hot-loop allocation count so the
# refresh below can prove the zero-value observability knobs added no
# allocations to the benchmarked path.
prev_allocs=$(awk -F'[,: ]+' '/BenchmarkSimHotLoop/ { for (i=1;i<=NF;i++) if ($i=="\"allocs_per_op\"") print $(i+1) }' BENCH_sim.json 2>/dev/null | tr -d '}')

# -count 3: the recorded ns/op is the minimum over three runs. Wall-clock
# on shared hosts swings ±15% run to run while the floor is stable (the
# simulated cycle counts are bit-identical), and bench_compare.sh gates
# against these numbers — a floor-vs-floor comparison is the only one a
# 10% threshold survives.
go test -run '^$' \
  -bench 'BenchmarkSimBasePVC$|BenchmarkSimCABAPVC$|BenchmarkSimCABAPVCInterp$|BenchmarkSimCABAPVCBatch$|BenchmarkSimCABAPVCDecoded$|BenchmarkSimBaseSSSP$|BenchmarkSimCABASSSP$|BenchmarkSimHotLoop$|BenchmarkSimPrefetchPVC$' \
  -benchtime 5x -count 3 -benchmem . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkSimParallelPVC' \
  -benchtime 5x -count 3 -benchmem . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkQueue$' -count 3 -benchmem ./internal/timing | tee -a "$tmp"

# Machine metadata: parallel-tick numbers (BenchmarkSimParallelPVC) only
# compare meaningfully across runs with the same worker budget, so the
# GOMAXPROCS the benchmarks actually ran under (the -N suffix Go appends
# to benchmark names — omitted entirely when GOMAXPROCS is 1) and the
# host CPU count are recorded alongside the numbers.
gomaxprocs=$(awk '/^Benchmark/ { if (match($1, /-[0-9]+$/)) { print substr($1, RSTART+1); exit } }' "$tmp")
num_cpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo null)

# Minimum over the -count repetitions per benchmark, first-seen order.
awk -v gomaxprocs="${gomaxprocs:-1}" -v num_cpu="$num_cpu" '
/^Benchmark/ {
  name=$1; sub(/-[0-9]+$/, "", name)
  ns="null"; bytes="null"; allocs="null"
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i-1)
    else if ($i == "B/op") bytes = $(i-1)
    else if ($i == "allocs/op") allocs = $(i-1)
  }
  if (!(name in min_ns)) {
    order[n++] = name
    min_ns[name] = ns; min_b[name] = bytes; min_a[name] = allocs
  } else {
    if (ns != "null" && (min_ns[name] == "null" || ns+0 < min_ns[name]+0)) min_ns[name] = ns
    if (bytes != "null" && (min_b[name] == "null" || bytes+0 < min_b[name]+0)) min_b[name] = bytes
    if (allocs != "null" && (min_a[name] == "null" || allocs+0 < min_a[name]+0)) min_a[name] = allocs
  }
}
END {
  print "{"
  printf "  \"meta\": {\"gomaxprocs\": %s, \"num_cpu\": %s},\n", gomaxprocs, num_cpu
  printf "  \"benchmarks\": ["; sep=""
  for (i = 0; i < n; i++) {
    name = order[i]
    printf "%s\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, min_ns[name], min_b[name], min_a[name]
    sep=","
  }
  print "\n  ]"; print "}"
}
' "$tmp" > BENCH_sim.json

# Allocation guard: with every obs knob at its zero value, the hot loop
# must allocate no more than the last recorded run (ns/op is noisy
# across machines, allocation counts are deterministic). A deliberate
# engine addition that pays a fixed scratch cost (e.g. the batch-issue
# slab, +68/op) steps the baseline with BENCH_ALLOC_STEP=1 — an explicit
# acknowledgment in the command line, so silent growth still fails.
new_allocs=$(awk -F'[,: ]+' '/BenchmarkSimHotLoop/ { for (i=1;i<=NF;i++) if ($i=="\"allocs_per_op\"") print $(i+1) }' BENCH_sim.json | tr -d '}')
if [ -n "$prev_allocs" ] && [ -n "$new_allocs" ] && [ "$new_allocs" -gt "$prev_allocs" ]; then
  if [ -n "$BENCH_ALLOC_STEP" ]; then
    echo "note: BenchmarkSimHotLoop allocs/op stepped $prev_allocs -> $new_allocs (acknowledged via BENCH_ALLOC_STEP)"
  else
    echo "FAIL: BenchmarkSimHotLoop allocs/op grew $prev_allocs -> $new_allocs (hot loop must stay allocation-stable; BENCH_ALLOC_STEP=1 acknowledges a deliberate step)" >&2
    exit 1
  fi
fi
echo "wrote BENCH_sim.json (hot-loop allocs/op: ${prev_allocs:-none} -> $new_allocs)"
