#!/bin/sh
# Compares the sentinel hot-loop benchmarks (BenchmarkSimCABAPVC,
# BenchmarkSimCABAPVCBatch, BenchmarkSimHotLoop and the use-case
# overhead canary BenchmarkSimPrefetchPVC) against the ns/op recorded in
# BENCH_sim.json and fails if any is more than 10% slower.
# Run via `make bench-compare` from the repository root. Does not rewrite
# the baseline — that is `make bench`'s job.
set -e
cd "$(dirname "$0")/.."

if [ ! -f BENCH_sim.json ]; then
  echo "FAIL: BENCH_sim.json missing; run 'make bench' to record a baseline" >&2
  exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Same fixed iteration count as scripts/bench.sh so the numbers are
# comparable with the recorded baseline. Both sides are minimums over
# repeated runs (the baseline records min-of-3): wall-clock on shared
# hosts swings ±15% run to run while the floor is stable, and only a
# floor-vs-floor comparison makes a 10% threshold usable.
go test -run '^$' \
  -bench 'BenchmarkSimCABAPVC$|BenchmarkSimCABAPVCBatch$|BenchmarkSimHotLoop$|BenchmarkSimPrefetchPVC$' \
  -benchtime 5x -count 5 . | tee "$tmp"

for name in BenchmarkSimCABAPVC BenchmarkSimCABAPVCBatch BenchmarkSimHotLoop BenchmarkSimPrefetchPVC; do
  base=$(awk -F'[,: ]+' -v n="\"$name\"" '
    $0 ~ n {
      for (i = 1; i <= NF; i++) if ($i == "\"ns_per_op\"") print $(i+1)
    }' BENCH_sim.json | tr -d '}')
  new=$(awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" {
      for (i = 2; i <= NF; i++)
        if ($i == "ns/op" && (best == "" || $(i-1)+0 < best+0)) best = $(i-1)
    } END { if (best != "") print best }' "$tmp")
  if [ -z "$base" ]; then
    echo "FAIL: $name has no ns_per_op baseline in BENCH_sim.json" >&2
    exit 1
  fi
  if [ -z "$new" ]; then
    echo "FAIL: $name produced no ns/op (benchmark missing or renamed?)" >&2
    exit 1
  fi
  # Integer arithmetic: regression iff new > base * 1.10.
  if [ "$(printf '%.0f' "$new")" -gt "$((${base%.*} * 110 / 100))" ]; then
    echo "FAIL: $name regressed >10%: baseline ${base} ns/op, now ${new} ns/op" >&2
    exit 1
  fi
  echo "ok: $name ${base} -> ${new} ns/op (within 10%)"
done
