GO ?= go

# Fuzz targets as NAME:PACKAGE pairs (one `go test -fuzz` invocation
# each: the Go fuzzer accepts a single target per run). The decompressors
# must error on corrupted payloads, never panic (the fault-injection
# framework feeds them in at simulation time); the snapshot container and
# the full simulator-state loader must survive arbitrary blobs the same
# way (checkpoint files live on disk between runs and are untrusted).
# FuzzPredecode differentially tests the superop engine against the
# interpreter on random Builder programs (the decoded≡interpreter
# invariant, DESIGN.md §12). FuzzStepRun does the same for the batched
# macro-step primitive against per-step decoded execution (the
# macro-step≡per-step invariant, DESIGN.md §13).
FUZZ_TARGETS = \
	FuzzDecompressBDI:./internal/compress \
	FuzzDecompressFPC:./internal/compress \
	FuzzDecompressCPack:./internal/compress \
	FuzzOpen:./internal/snapshot \
	FuzzReader:./internal/snapshot \
	FuzzSnapshotLoad:./internal/gpu \
	FuzzPredecode:./internal/core \
	FuzzStepRun:./internal/core
FUZZTIME ?= 10s

.PHONY: build vet lint test race fuzz snapshot-check trace-check farm-check usecase-check soak soak-short check bench bench-compare

# Seed for the chaos/soak harness: one seed determines the entire chaos
# schedule (which cells get killed/hung/OOMed, restart and clock-skew
# times, disk slowness), so a failing run reproduces exactly.
SOAK_SEED ?= 1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint enforces godoc coverage on the observability and reliability
# packages — plus the ISA predecode and timing packages the execution
# engines lean on, and the simulator/config/workloads/experiments
# surface the assist-warp use cases extended — with the repo's own
# stdlib-only checker (no external linters).
lint:
	$(GO) run ./scripts/lintdoc ./internal/obs ./internal/audit ./internal/faults ./internal/snapshot ./internal/isa ./internal/timing ./internal/farm ./internal/core ./internal/config ./internal/workloads ./internal/gpu ./internal/stats ./experiments

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t#*:}; \
		echo "fuzz $$name ($(FUZZTIME)) in $$pkg"; \
		$(GO) test -run '^$$' -fuzz "^$$name$$" -fuzztime $(FUZZTIME) "$$pkg" || exit 1; \
	done

# snapshot-check proves the checkpoint/restore guarantee in isolation:
# run → save → load → run is bit-identical to an uninterrupted run at
# every worker count, the invariant auditor stays quiet on clean runs,
# and malformed blobs surface structured errors instead of panicking.
snapshot-check:
	$(GO) test ./internal/snapshot
	$(GO) test -run 'Snapshot|Audit|Wedge|Checkpoint' ./internal/gpu ./experiments .

# trace-check proves the trace exporter's schema promise end to end: a
# small instrumented PVC run must produce a Perfetto-loadable trace with
# balanced spans and monotone timestamps.
trace-check:
	$(GO) test -run 'TestTraceSchemaPVC' .

# farm-check proves the distributed-sweep contract under chaos, with the
# race detector on (coordinator, workers and client genuinely run
# concurrently here): a four-worker sweep with an injected kill, hang,
# transient flake and deterministic wedge must converge to results
# bit-identical to the in-process run, resume the killed cell from its
# checkpoint blob, never retry the wedge, and serve restarts from the
# result cache. soak-short rides along as the overload/robustness gate.
# The hard -timeout keeps a protocol deadlock from eating the CI budget.
farm-check: soak-short
	$(GO) test -race -timeout 10m ./internal/farm
	$(GO) test -race -timeout 10m -run 'TestFarmSweepEndToEnd|TestSweepContextCancel|TestCheckpointTornLine|TestFarmClient' ./experiments

# soak runs the seeded chaos/soak harness for the farm (FARM.md,
# "Operating under overload"): coordinator kill/restart with torn-write
# injection, worker kills/hangs/OOMs, a poison cell, admission-control
# pressure, lease-clock skew and slow disk, all under the race detector.
# SOAK_SEED picks the schedule; a failure reproduces with the same seed.
soak:
	SOAK_SEED=$(SOAK_SEED) $(GO) test -race -timeout 15m -count=1 -v -run 'TestSoakSeededChaos' ./internal/farm

# soak-short is the fixed-seed CI variant: deterministic schedule, race
# detector on, hard timeout so a deadlock fails fast instead of hanging
# the build.
soak-short:
	SOAK_SEED=1 $(GO) test -race -timeout 5m -count=1 -run 'TestSoakSeededChaos' ./internal/farm

# usecase-check proves the assist-warp use-case contract (USECASES.md,
# DESIGN.md §14) end to end: use-cases-off runs stay byte-identical to
# the goldens, prefetch/memoization runs are bit-identical across the
# engine-strategy grid and across snapshot/resume, each showcase
# workload actually wins cycles, and the Figure 14 sweep keeps its
# shape.
usecase-check:
	$(GO) test -run 'TestUseCase|TestPrefetchWinsOnSTRD|TestMemoizationWinsOnTBL' .
	$(GO) test -run 'TestStrideTable|TestPrefetchUsefulnessRing|TestMemoCache|TestMemoKey' ./internal/gpu
	$(GO) test -run 'TestFig14Hooked' ./experiments

# check is the tier-1 gate: everything must pass before a commit.
check: build vet lint snapshot-check trace-check farm-check usecase-check test race fuzz

# bench refreshes BENCH_sim.json with the simulator hot-loop and event
# queue numbers (ns/op, B/op, allocs/op).
bench:
	./scripts/bench.sh

# bench-compare reruns the two sentinel hot-loop benchmarks and fails if
# either regressed more than 10% against the ns/op recorded in
# BENCH_sim.json (catch perf regressions without rewriting the baseline).
bench-compare:
	./scripts/bench_compare.sh
