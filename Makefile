GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate: everything must pass before a commit.
check: build vet test race

# bench refreshes BENCH_sim.json with the simulator hot-loop and event
# queue numbers (ns/op, B/op, allocs/op).
bench:
	./scripts/bench.sh
