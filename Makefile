GO ?= go

# Fuzz targets as NAME:PACKAGE pairs (one `go test -fuzz` invocation
# each: the Go fuzzer accepts a single target per run). The decompressors
# must error on corrupted payloads, never panic (the fault-injection
# framework feeds them in at simulation time); the snapshot container and
# the full simulator-state loader must survive arbitrary blobs the same
# way (checkpoint files live on disk between runs and are untrusted).
FUZZ_TARGETS = \
	FuzzDecompressBDI:./internal/compress \
	FuzzDecompressFPC:./internal/compress \
	FuzzDecompressCPack:./internal/compress \
	FuzzOpen:./internal/snapshot \
	FuzzReader:./internal/snapshot \
	FuzzSnapshotLoad:./internal/gpu
FUZZTIME ?= 10s

.PHONY: build vet test race fuzz snapshot-check check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t#*:}; \
		echo "fuzz $$name ($(FUZZTIME)) in $$pkg"; \
		$(GO) test -run '^$$' -fuzz "^$$name$$" -fuzztime $(FUZZTIME) "$$pkg" || exit 1; \
	done

# snapshot-check proves the checkpoint/restore guarantee in isolation:
# run → save → load → run is bit-identical to an uninterrupted run at
# every worker count, the invariant auditor stays quiet on clean runs,
# and malformed blobs surface structured errors instead of panicking.
snapshot-check:
	$(GO) test ./internal/snapshot
	$(GO) test -run 'Snapshot|Audit|Wedge|Checkpoint' ./internal/gpu ./experiments .

# check is the tier-1 gate: everything must pass before a commit.
check: build vet snapshot-check test race fuzz

# bench refreshes BENCH_sim.json with the simulator hot-loop and event
# queue numbers (ns/op, B/op, allocs/op).
bench:
	./scripts/bench.sh
