GO ?= go

# Decompression fuzz targets (one `go test -fuzz` invocation each: the Go
# fuzzer accepts a single target per run).
FUZZ_TARGETS = FuzzDecompressBDI FuzzDecompressFPC FuzzDecompressCPack
FUZZTIME ?= 10s

.PHONY: build vet test race fuzz check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz gives each decompressor a short seeded fuzzing pass: corrupted
# payloads must error, never panic (the fault-injection framework feeds
# them in at simulation time).
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/compress || exit 1; \
	done

# check is the tier-1 gate: everything must pass before a commit.
check: build vet test race fuzz

# bench refreshes BENCH_sim.json with the simulator hot-loop and event
# queue numbers (ns/op, B/op, allocs/op).
bench:
	./scripts/bench.sh
