package caba_test

import (
	"fmt"
	"runtime"
	"testing"

	caba "github.com/caba-sim/caba"
)

// TestParallelGoldenEquivalence is the parallel tick engine's contract:
// SMWorkers must be invisible in the results. Every app×design pair below
// runs at worker counts {1, 4, GOMAXPROCS} and every Result field — the
// cycle count, the Figure-1 stall breakdown, bandwidth utilization,
// energy, the decompression-mismatch counter, the fast-forward skip
// counts, and every raw counter in Metrics — must match the serial run
// exactly, not approximately.
func TestParallelGoldenEquivalence(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	pairs := []struct {
		app    string
		design caba.Design
	}{
		{"sssp", caba.Base},   // memory-bound, no compression machinery
		{"PVC", caba.CABABDI}, // assist warps + cross-SM atomics
		{"bfs", caba.HWBDI},   // hardware (de)compression latencies
		{"TRA", caba.CABABDI}, // second CABA-BDI app, different access pattern
		{"KM", caba.IdealBDI}, // zero-latency decompression design
	}
	for _, p := range pairs {
		p := p
		t.Run(fmt.Sprintf("%s_%s", p.app, p.design.Name), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) *caba.Result {
				t.Helper()
				cfg := caba.QuickConfig()
				cfg.Scale = 0.03
				cfg.SMWorkers = workers
				r, err := caba.Run(cfg, p.design, p.app, 1)
				if err != nil {
					t.Fatalf("SMWorkers=%d: %v", workers, err)
				}
				return r
			}
			serial := run(1)
			for _, w := range workerCounts {
				if w == 1 {
					continue
				}
				par := run(w)
				if serial.Cycles != par.Cycles {
					t.Errorf("SMWorkers=%d: cycles diverge: serial %d, parallel %d", w, serial.Cycles, par.Cycles)
				}
				if serial.IPC != par.IPC {
					t.Errorf("SMWorkers=%d: IPC diverges: %v != %v", w, serial.IPC, par.IPC)
				}
				if serial.BandwidthUtil != par.BandwidthUtil {
					t.Errorf("SMWorkers=%d: bandwidth utilization diverges: %v != %v", w, serial.BandwidthUtil, par.BandwidthUtil)
				}
				if serial.CompressionRatio != par.CompressionRatio {
					t.Errorf("SMWorkers=%d: compression ratio diverges: %v != %v", w, serial.CompressionRatio, par.CompressionRatio)
				}
				if serial.EnergyNJ != par.EnergyNJ || serial.DRAMEnergyNJ != par.DRAMEnergyNJ {
					t.Errorf("SMWorkers=%d: energy diverges: total %v != %v, DRAM %v != %v",
						w, serial.EnergyNJ, par.EnergyNJ, serial.DRAMEnergyNJ, par.DRAMEnergyNJ)
				}
				if serial.DecompMismatches != par.DecompMismatches {
					t.Errorf("SMWorkers=%d: decompression mismatches diverge: %d != %d",
						w, serial.DecompMismatches, par.DecompMismatches)
				}
				if serial.FFSkips != par.FFSkips || serial.FFCycles != par.FFCycles {
					t.Errorf("SMWorkers=%d: fast-forward skips diverge: %d/%d != %d/%d",
						w, serial.FFSkips, serial.FFCycles, par.FFSkips, par.FFCycles)
				}
				for _, d := range serial.Stats.Diff(par.Stats) {
					t.Errorf("SMWorkers=%d: stats diverge: %s", w, d)
				}
			}
		})
	}
}

// TestParallelFastForwardCompose checks the two engines together: the
// fast-forward run at several worker counts must still match the plain
// per-cycle serial run bit for bit.
func TestParallelFastForwardCompose(t *testing.T) {
	run := func(workers int, ff bool) *caba.Result {
		t.Helper()
		cfg := caba.QuickConfig()
		cfg.Scale = 0.03
		cfg.SMWorkers = workers
		cfg.FastForward = ff
		r, err := caba.Run(cfg, caba.CABABDI, "PVC", 1)
		if err != nil {
			t.Fatalf("SMWorkers=%d FastForward=%v: %v", workers, ff, err)
		}
		return r
	}
	base := run(1, false)
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got := run(w, true)
		if base.Cycles != got.Cycles {
			t.Errorf("SMWorkers=%d+FF: cycles diverge: %d != %d", w, base.Cycles, got.Cycles)
		}
		for _, d := range base.Stats.Diff(got.Stats) {
			t.Errorf("SMWorkers=%d+FF: stats diverge: %s", w, d)
		}
	}
}
