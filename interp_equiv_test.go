package caba_test

import (
	"fmt"
	"testing"

	caba "github.com/caba-sim/caba"
)

// TestInterpreterGoldenEquivalence is the pre-decoded execution engine's
// contract at the full-simulator level: Config.Interpreter must be
// invisible in the results. FuzzPredecode pins the decoded≡interpreter
// invariant per instruction on one Exec; this test closes the loop over
// the whole machine — schedulers, assist warps, the memory hierarchy and
// fast-forward all riding on StepRef — by running every app×design pair
// both ways and requiring the Result and every raw counter in Metrics to
// match exactly, not approximately.
func TestInterpreterGoldenEquivalence(t *testing.T) {
	pairs := []struct {
		app    string
		design caba.Design
	}{
		{"sssp", caba.Base},   // memory-bound, no compression machinery
		{"PVC", caba.CABABDI}, // assist warps + cross-SM atomics
		{"bfs", caba.HWBDI},   // hardware (de)compression latencies
		{"KM", caba.IdealBDI}, // zero-latency decompression design
	}
	for _, p := range pairs {
		p := p
		t.Run(fmt.Sprintf("%s_%s", p.app, p.design.Name), func(t *testing.T) {
			t.Parallel()
			run := func(interp bool) *caba.Result {
				t.Helper()
				cfg := caba.QuickConfig()
				cfg.Scale = 0.03
				cfg.Interpreter = interp
				r, err := caba.Run(cfg, p.design, p.app, 1)
				if err != nil {
					t.Fatalf("Interpreter=%v: %v", interp, err)
				}
				return r
			}
			decoded := run(false)
			ref := run(true)
			if decoded.Cycles != ref.Cycles {
				t.Errorf("cycles diverge: decoded %d, interpreter %d", decoded.Cycles, ref.Cycles)
			}
			if decoded.IPC != ref.IPC {
				t.Errorf("IPC diverges: %v != %v", decoded.IPC, ref.IPC)
			}
			if decoded.BandwidthUtil != ref.BandwidthUtil {
				t.Errorf("bandwidth utilization diverges: %v != %v", decoded.BandwidthUtil, ref.BandwidthUtil)
			}
			if decoded.CompressionRatio != ref.CompressionRatio {
				t.Errorf("compression ratio diverges: %v != %v", decoded.CompressionRatio, ref.CompressionRatio)
			}
			if decoded.EnergyNJ != ref.EnergyNJ || decoded.DRAMEnergyNJ != ref.DRAMEnergyNJ {
				t.Errorf("energy diverges: total %v != %v, DRAM %v != %v",
					decoded.EnergyNJ, ref.EnergyNJ, decoded.DRAMEnergyNJ, ref.DRAMEnergyNJ)
			}
			if decoded.DecompMismatches != ref.DecompMismatches {
				t.Errorf("decompression mismatches diverge: %d != %d", decoded.DecompMismatches, ref.DecompMismatches)
			}
			if decoded.FFSkips != ref.FFSkips || decoded.FFCycles != ref.FFCycles {
				t.Errorf("fast-forward skips diverge: %d/%d != %d/%d",
					decoded.FFSkips, decoded.FFCycles, ref.FFSkips, ref.FFCycles)
			}
			for _, d := range decoded.Stats.Diff(ref.Stats) {
				t.Errorf("stats diverge: %s", d)
			}
		})
	}
}
