package caba_test

// One benchmark per paper table/figure (deliverable d): each regenerates
// its experiment and reports the headline numbers as custom benchmark
// metrics, so `go test -bench=. -benchmem` reproduces the evaluation.
//
// Scale: benches default to small working sets so the full suite finishes
// in minutes; set CABA_BENCH_SCALE (e.g. 0.2) or CABA_FULL=1 for
// paper-scale runs. Shapes (who wins, by roughly what factor) are stable
// across scales; EXPERIMENTS.md records the calibrated runs.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	caba "github.com/caba-sim/caba"
	"github.com/caba-sim/caba/experiments"
	"github.com/caba-sim/caba/internal/stats"
)

func benchOptions(b *testing.B) experiments.Options {
	o := experiments.Defaults(io.Discard)
	o.Scale = 0.02
	if s := os.Getenv("CABA_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			o.Scale = v
		}
	}
	if os.Getenv("CABA_FULL") == "1" {
		o.Scale = 1.0
	}
	if testing.Verbose() {
		o.Out = os.Stdout
	}
	return o
}

func BenchmarkFig01StallBreakdown(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MemDepFraction1x, "mem+dep-1x-%")
		b.ReportMetric(100*res.MemDepFraction2x, "mem+dep-2x-%")
		// Paper: 61% at 1x, 51% at 2x — more bandwidth, fewer stalls.
		if res.MemDepFraction2x >= res.MemDepFraction1x {
			b.Errorf("memory stalls must shrink with more bandwidth: 1x=%.2f 2x=%.2f",
				res.MemDepFraction1x, res.MemDepFraction2x)
		}
	}
}

func BenchmarkFig02UnallocatedRegisters(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Average, "unallocated-%")
		// Paper: 24% average; a substantial unallocated fraction is what
		// makes assist-warp register provisioning free.
		if res.Average < 0.05 || res.Average > 0.80 {
			b.Errorf("average unallocated registers = %.2f; out of plausible range", res.Average)
		}
	}
}

func BenchmarkFig07Performance(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.CABASpeedup(), "caba-speedup-x")
		b.ReportMetric(s.IdealSpeedup(), "ideal-speedup-x")
		b.ReportMetric(s.HWSpeedup(), "hw-speedup-x")
		b.ReportMetric(s.HWMemSpeedup(), "hwmem-speedup-x")
		// Paper shape: Ideal >= HW-BDI-Mem always. CABA's proximity to
		// the hardware designs is only meaningful once runs are long
		// enough to leave the cold-start transient (see EXPERIMENTS.md);
		// below scale 0.1 decompression latency dominates tiny runs.
		if s.IdealSpeedup() < s.HWMemSpeedup() {
			b.Errorf("Ideal (%.2f) below HW-BDI-Mem (%.2f)", s.IdealSpeedup(), s.HWMemSpeedup())
		}
		if o.Scale >= 0.1 && s.CABASpeedup() < 0.80*s.HWMemSpeedup() {
			b.Errorf("CABA (%.2f) too far below HW-BDI-Mem (%.2f)", s.CABASpeedup(), s.HWMemSpeedup())
		}
	}
}

func BenchmarkFig08BandwidthUtilization(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.BaseBWUtil(), "base-bw-%")
		b.ReportMetric(100*s.CABABWUtil(), "caba-bw-%")
		b.ReportMetric(100*s.MDHitRate, "md-hit-%")
		// Paper: utilization drops (53.6% -> 35.6%) and the MD cache hits
		// ~85% on average.
		if s.CABABWUtil() >= s.BaseBWUtil() {
			b.Errorf("compression must reduce bandwidth utilization: %.2f -> %.2f",
				s.BaseBWUtil(), s.CABABWUtil())
		}
		if s.MDHitRate < 0.5 {
			b.Errorf("MD hit rate %.2f implausibly low", s.MDHitRate)
		}
	}
}

func BenchmarkFig09Energy(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.CABAEnergy(), "caba-energy-rel")
		b.ReportMetric(100*s.DRAMEnergyReduction, "dram-saving-%")
		// Paper: 22.2% total energy reduction, 29.5% DRAM power reduction.
		if s.DRAMEnergyReduction <= 0 {
			b.Errorf("compression must cut DRAM energy (got %.2f)", s.DRAMEnergyReduction)
		}
	}
}

func BenchmarkFig10Algorithms(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10and11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSpeedup[caba.CABABDI.Name], "bdi-x")
		b.ReportMetric(res.MeanSpeedup[caba.CABAFPC.Name], "fpc-x")
		b.ReportMetric(res.MeanSpeedup[caba.CABACPack.Name], "cpack-x")
		b.ReportMetric(res.MeanSpeedup[caba.CABABest.Name], "best-x")
	}
}

func BenchmarkFig11CompressionRatio(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10and11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRatio[caba.CABABDI.Name], "bdi-ratio")
		b.ReportMetric(res.MeanRatio[caba.CABAFPC.Name], "fpc-ratio")
		b.ReportMetric(res.MeanRatio[caba.CABACPack.Name], "cpack-ratio")
		b.ReportMetric(res.MeanRatio[caba.CABABest.Name], "best-ratio")
		// BestOfAll dominates every single algorithm by construction.
		for _, d := range []string{caba.CABABDI.Name, caba.CABAFPC.Name, caba.CABACPack.Name} {
			if res.MeanRatio[caba.CABABest.Name] < res.MeanRatio[d]-0.01 {
				b.Errorf("BestOfAll ratio %.2f below %s %.2f",
					res.MeanRatio[caba.CABABest.Name], d, res.MeanRatio[d])
			}
		}
	}
}

func BenchmarkFig12BWSensitivity(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(o)
		if err != nil {
			b.Fatal(err)
		}
		base := res.Mean[caba.Base.Name]
		cab := res.Mean[caba.CABABDI.Name]
		b.ReportMetric(base[0.5], "base-0.5x")
		b.ReportMetric(cab[1.0], "caba-1x")
		b.ReportMetric(base[2.0], "base-2x")
		// Paper shape: performance grows with bandwidth, and CABA at each
		// point beats (or matches) the baseline at the same point.
		if !(base[0.5] < base[1.0] && base[1.0] < base[2.0]) {
			b.Errorf("baseline must scale with bandwidth: %v", base)
		}
		if o.Scale >= 0.1 && (cab[0.5] < base[0.5]*0.80 || cab[1.0] < base[1.0]*0.80) {
			b.Errorf("CABA collapses under bandwidth scaling: caba=%v base=%v", cab, base)
		}
	}
}

func BenchmarkFig13CacheCompression(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(o)
		if err != nil {
			b.Fatal(err)
		}
		for name, m := range res.MeanSpeedup {
			b.ReportMetric(m, name+"-x")
		}
	}
}

func BenchmarkMDCacheHitRate(b *testing.B) {
	// Section 4.3.2's claim in isolation: 8KB 4-way MD cache hits ~85%.
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		s, err := experiments.Study789(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.MDHitRate, "md-hit-%")
	}
}

// --- micro-benchmarks: single-run simulation throughput ---

func benchOneApp(b *testing.B, app string, d caba.Design) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	benchOneAppCfg(b, cfg, app, d)
}

func benchOneAppCfg(b *testing.B, cfg caba.Config, app string, d caba.Design) {
	for i := 0; i < b.N; i++ {
		res, err := caba.Run(cfg, d, app, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "ipc")
		b.ReportMetric(float64(res.Cycles), "gpu-cycles")
	}
}

func BenchmarkSimBasePVC(b *testing.B)  { benchOneApp(b, "PVC", caba.Base) }
func BenchmarkSimCABAPVC(b *testing.B)  { benchOneApp(b, "PVC", caba.CABABDI) }
func BenchmarkSimBaseSSSP(b *testing.B) { benchOneApp(b, "sssp", caba.Base) }

// BenchmarkSimCABAPVCInterp runs the CABA PVC workload on the
// interpreter escape hatch (Config.Interpreter). Comparing it against
// BenchmarkSimCABAPVC measures the pre-decoded engine's speedup
// like-for-like on the same host and load, independent of the recorded
// BENCH_sim.json history.
func BenchmarkSimCABAPVCInterp(b *testing.B) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	cfg.Interpreter = true
	benchOneAppCfg(b, cfg, "PVC", caba.CABABDI)
}

// BenchmarkSimCABAPVCBatch pins Config.BatchIssue on explicitly — the
// third sentinel in BENCH_sim.json alongside BenchmarkSimCABAPVC and
// BenchmarkSimHotLoop. BatchIssue currently defaults on, so this tracks
// the same engine as BenchmarkSimCABAPVC, but the sentinel stays
// meaningful if the default ever flips.
func BenchmarkSimCABAPVCBatch(b *testing.B) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	cfg.BatchIssue = true
	benchOneAppCfg(b, cfg, "PVC", caba.CABABDI)
}

// BenchmarkSimCABAPVCDecoded pins Config.BatchIssue off: the pre-decoded
// per-cycle engine without macro-step windows. The Batch/Decoded/Interp
// trio gives the like-for-like engine decomposition EXPERIMENTS.md
// records (batched vs. per-cycle decoded vs. interpreter).
func BenchmarkSimCABAPVCDecoded(b *testing.B) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	cfg.BatchIssue = false
	benchOneAppCfg(b, cfg, "PVC", caba.CABABDI)
}

// BenchmarkSimHotLoop measures the simulator's inner loop — issue,
// writeback ring, memory events, stall accounting — on a memory-bound
// kernel with the fixed seed, reporting allocations per run. This is the
// canary for hot-path allocation regressions: the fast-forward +
// preallocation work dropped it several-fold, and BENCH_sim.json records
// the calibrated numbers.
func BenchmarkSimHotLoop(b *testing.B) {
	cfg := caba.QuickConfig()
	cfg.Scale = 0.05
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := caba.Run(cfg, caba.CABABDI, "sssp", 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "ipc")
	}
}
func BenchmarkSimCABASSSP(b *testing.B) { benchOneApp(b, "sssp", caba.CABABDI) }

// BenchmarkSimPrefetchPVC runs PVC under the CABA-Prefetch design: the
// stride tables train on every L1 miss and the throttle gates nearly
// every trigger (PVC's access pattern gives the detector little to work
// with), so this times the use-case machinery's overhead on the miss
// path rather than its payoff. bench-compare gates it alongside the
// hot-loop sentinels: the per-miss training cost must stay flat.
func BenchmarkSimPrefetchPVC(b *testing.B) { benchOneApp(b, "PVC", caba.CABAPrefetch) }

// BenchmarkSimParallelPVC measures the two-phase parallel tick engine:
// the same CABA-BDI PVC run at increasing SM worker counts. Results are
// bit-identical at every worker count (TestParallelGoldenEquivalence);
// only wall-clock may differ. Scaling is bounded by the host's core count
// — on a single-core host every sub-benchmark degenerates to roughly
// serial speed plus barrier overhead.
func BenchmarkSimParallelPVC(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := caba.QuickConfig()
			cfg.Scale = 0.05
			cfg.SMWorkers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := caba.Run(cfg, caba.CABABDI, "PVC", int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "ipc")
				b.ReportMetric(float64(res.Cycles), "gpu-cycles")
			}
		})
	}
}

// BenchmarkAblationDeployBW sweeps the AWC's deployment bandwidth — the
// structure that bounds how fast assist warps can be fed into the
// pipelines (Section 3.3). Starving it (1 instr/cycle) shows decompression
// becoming the fill bottleneck; the default (4) keeps CABA near the
// dedicated-logic designs.
func BenchmarkAblationDeployBW(b *testing.B) {
	for _, bw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("deploy=%d", bw), func(b *testing.B) {
			cfg := caba.QuickConfig()
			cfg.Scale = 0.05
			cfg.AWDeployBW = bw
			for i := 0; i < b.N; i++ {
				res, err := caba.Run(cfg, caba.CABABDI, "CONS", 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "ipc")
			}
		})
	}
}

func BenchmarkAblationStallClassifier(b *testing.B) {
	// Sanity ablation: issue-slot accounting must be conserved — the five
	// Figure 1 components partition all slots.
	cfg := caba.QuickConfig()
	cfg.Scale = 0.03
	for i := 0; i < b.N; i++ {
		res, err := caba.Run(cfg, caba.Base, "CONS", 1)
		if err != nil {
			b.Fatal(err)
		}
		var total uint64
		for _, v := range res.Stats.IssueSlots {
			total += v
		}
		want := res.Cycles * uint64(cfg.NumSMs) * uint64(cfg.NumSchedulers)
		if total != want {
			b.Fatalf("issue slots %d != cycles x slots %d", total, want)
		}
		br := res.Stats.IssueBreakdown()
		b.ReportMetric(100*br[stats.Active], "active-%")
	}
}
